package secretshare

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"testing"
)

func encodeN(t *testing.T, enc *Encoder, m []byte, n int) []Encoding {
	t.Helper()
	out := make([]Encoding, n)
	for i := range out {
		e, err := enc.Encode(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = e
	}
	return out
}

func TestRecoverAtThreshold(t *testing.T) {
	enc := &Encoder{T: 5}
	m := []byte("a hard-to-guess secret value 42")
	encs := encodeN(t, enc, m, 5)
	rec, errs := Recover(5, encs)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(rec) != 1 || !bytes.Equal(rec[0].Value, m) {
		t.Fatalf("recovered %v, want %q", rec, m)
	}
	if rec[0].Count != 5 {
		t.Errorf("count = %d, want 5", rec[0].Count)
	}
}

func TestBelowThresholdStaysHidden(t *testing.T) {
	enc := &Encoder{T: 20}
	m := []byte("private key material")
	encs := encodeN(t, enc, m, 19)
	rec, _ := Recover(20, encs)
	if len(rec) != 0 {
		t.Fatalf("recovered %d values from %d < t shares", len(rec), len(encs))
	}
}

// TestWrongSubsetFails checks that interpolating fewer than t shares yields a
// key that fails authenticated decryption rather than silently decrypting.
func TestWrongSubsetFails(t *testing.T) {
	enc := &Encoder{T: 4}
	m := []byte("secret")
	encs := encodeN(t, enc, m, 3)
	kb, err := Interpolate(encs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := open(kb, encs[0].Ciphertext); err == nil {
		t.Fatal("3 shares of a t=4 sharing decrypted the ciphertext")
	}
}

func TestDeterministicCiphertext(t *testing.T) {
	enc := &Encoder{T: 3}
	m := []byte("same value")
	a, err := enc.Encode(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Ciphertext, b.Ciphertext) {
		t.Error("two encodings of the same value have different ciphertexts")
	}
	if a.X == b.X {
		t.Error("two encodings drew the same evaluation point")
	}
	if a.Y == b.Y {
		t.Error("distinct points produced identical share values")
	}
}

func TestDistinctValuesDistinctGroups(t *testing.T) {
	enc := &Encoder{T: 2}
	var encs []Encoding
	for i := 0; i < 4; i++ {
		m := []byte(fmt.Sprintf("word-%d", i))
		encs = append(encs, encodeN(t, enc, m, 2+i)...)
	}
	rec, errs := Recover(2, encs)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(rec) != 4 {
		t.Fatalf("recovered %d values, want 4", len(rec))
	}
	counts := map[string]int{}
	for _, r := range rec {
		counts[string(r.Value)] = r.Count
	}
	for i := 0; i < 4; i++ {
		if counts[fmt.Sprintf("word-%d", i)] != 2+i {
			t.Errorf("word-%d count = %d, want %d", i, counts[fmt.Sprintf("word-%d", i)], 2+i)
		}
	}
}

func TestMoreThanThresholdShares(t *testing.T) {
	enc := &Encoder{T: 20}
	m := []byte("popular word")
	encs := encodeN(t, enc, m, 100)
	rec, errs := Recover(20, encs)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(rec) != 1 || !bytes.Equal(rec[0].Value, m) || rec[0].Count != 100 {
		t.Fatalf("got %+v", rec)
	}
}

func TestThresholdOne(t *testing.T) {
	enc := &Encoder{T: 1}
	m := []byte("no crowd needed")
	encs := encodeN(t, enc, m, 1)
	rec, errs := Recover(1, encs)
	if len(errs) != 0 || len(rec) != 1 || !bytes.Equal(rec[0].Value, m) {
		t.Fatalf("rec=%v errs=%v", rec, errs)
	}
}

func TestDuplicateSharesDoNotCount(t *testing.T) {
	enc := &Encoder{T: 3}
	m := []byte("replayed share")
	e, err := enc.Encode(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	// The same share replayed 10 times must not reach the threshold.
	encs := []Encoding{e, e, e, e, e, e, e, e, e, e}
	rec, _ := Recover(3, encs)
	if len(rec) != 0 {
		t.Fatal("replayed single share reached recovery threshold")
	}
}

func TestTamperedShareDetected(t *testing.T) {
	enc := &Encoder{T: 3}
	m := []byte("integrity matters")
	encs := encodeN(t, enc, m, 3)
	encs[1].Y[0] ^= 0xff
	rec, errs := Recover(3, encs)
	if len(rec) != 0 {
		t.Fatal("tampered share still recovered plaintext")
	}
	if len(errs) == 0 {
		t.Fatal("tampering not reported")
	}
}

func TestInterpolateRejectsDuplicatePoints(t *testing.T) {
	enc := &Encoder{T: 2}
	e, err := enc.Encode(rand.Reader, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Interpolate([]Encoding{e, e}); err == nil {
		t.Fatal("Interpolate accepted duplicate evaluation points")
	}
}

func TestEncodeRejectsBadThreshold(t *testing.T) {
	enc := &Encoder{T: 0}
	if _, err := enc.Encode(rand.Reader, []byte("m")); err == nil {
		t.Fatal("Encode accepted t=0")
	}
}

func TestLargeMessage(t *testing.T) {
	enc := &Encoder{T: 2}
	m := bytes.Repeat([]byte("long form text "), 1000)
	encs := encodeN(t, enc, m, 2)
	rec, errs := Recover(2, encs)
	if len(errs) != 0 || len(rec) != 1 || !bytes.Equal(rec[0].Value, m) {
		t.Fatal("large message did not round-trip")
	}
}

func BenchmarkEncodeT20(b *testing.B) {
	enc := &Encoder{T: 20}
	m := []byte("a typical vocabulary word")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoverT20(b *testing.B) {
	enc := &Encoder{T: 20}
	m := []byte("a typical vocabulary word")
	encs := make([]Encoding, 20)
	for i := range encs {
		e, err := enc.Encode(rand.Reader, m)
		if err != nil {
			b.Fatal(err)
		}
		encs[i] = e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, errs := Recover(20, encs)
		if len(errs) != 0 || len(rec) != 1 {
			b.Fatal("recover failed")
		}
	}
}
