// P-256 batch kernels: a 4x64 Montgomery field (CIOS multiplication — the
// prime's low limb is 2^64-1, so the Montgomery factor n0' is 1 and each
// reduction step is a plain multiply-accumulate), Jacobian-coordinate point
// arithmetic with no per-op modular inversion, batch affine normalization
// via the Montgomery trick, and signed-digit comb tables for points that are
// fixed across a batch. Variable-point and base-point multiplications
// delegate to crypto/elliptic, whose assembly nistec backend is faster than
// any portable Go loop; the wins here are the amortized inversions and the
// comb tables that replace variable-point mults with table adds.
package group

import (
	"crypto/elliptic"
	"math/big"
	"math/bits"
)

var (
	p256Curve  = elliptic.P256()
	p256P      = p256Curve.Params().P
	p256N      = p256Curve.Params().N
	p256Limbs  = [4]uint64{0xffffffffffffffff, 0x00000000ffffffff, 0, 0xffffffff00000001}
	p256R2     fep256 // 2^512 mod p, in plain form (used to enter Montgomery domain)
	p256MontB  fep256 // curve b, Montgomery
	p256Mont3  fep256 // 3, Montgomery
	p256MontID fep256 // 1, Montgomery (the Montgomery form of one is R mod p)
)

// fep256 is a P-256 field element in Montgomery form (value * 2^256 mod p),
// four little-endian 64-bit limbs, always fully reduced below p.
type fep256 [4]uint64

func init() {
	r2 := new(big.Int).Lsh(big.NewInt(1), 512)
	r2.Mod(r2, p256P)
	p256R2 = p256LimbsOf(r2)
	p256MontB.fromBig(p256Curve.Params().B)
	p256Mont3.fromBig(big.NewInt(3))
	p256MontID.fromBig(big.NewInt(1))
}

// p256LimbsOf packs a reduced big.Int into raw (non-Montgomery) limbs.
func p256LimbsOf(v *big.Int) fep256 {
	var b [32]byte
	v.FillBytes(b[:])
	var out fep256
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[i] |= uint64(b[31-(i*8+j)]) << (j * 8)
		}
	}
	return out
}

func (v *fep256) bigOf() *big.Int {
	var b [32]byte
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			b[31-(i*8+j)] = byte(v[i] >> (j * 8))
		}
	}
	return new(big.Int).SetBytes(b[:])
}

// montMul sets v = a*b / 2^256 mod p (CIOS with n0' = 1).
func (v *fep256) montMul(a, b *fep256) {
	var t [4]uint64
	var t4, t5 uint64
	for i := 0; i < 4; i++ {
		// t += a[i] * b
		var c uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			var cc uint64
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			t[j] = lo
			c = hi
		}
		var cc uint64
		t4, cc = bits.Add64(t4, c, 0)
		t5 += cc
		// reduction step: m = t[0] (n0' == 1), t = (t + m*p) >> 64
		m := t[0]
		c = 0
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(m, p256Limbs[j])
			lo, cc = bits.Add64(lo, c, 0)
			hi += cc
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			t[j] = lo
			c = hi
		}
		t4, cc = bits.Add64(t4, c, 0)
		t5 += cc
		t[0], t[1], t[2], t[3] = t[1], t[2], t[3], t4
		t4, t5 = t5, 0
	}
	// result < 2p: one conditional subtraction
	var borrow uint64
	var r fep256
	r[0], borrow = bits.Sub64(t[0], p256Limbs[0], 0)
	r[1], borrow = bits.Sub64(t[1], p256Limbs[1], borrow)
	r[2], borrow = bits.Sub64(t[2], p256Limbs[2], borrow)
	r[3], borrow = bits.Sub64(t[3], p256Limbs[3], borrow)
	if t4 == 1 || borrow == 0 {
		*v = r
	} else {
		*v = t
	}
}

func (v *fep256) Square(a *fep256) { v.montMul(a, a) }

func (v *fep256) Add(a, b *fep256) {
	var carry uint64
	var t fep256
	t[0], carry = bits.Add64(a[0], b[0], 0)
	t[1], carry = bits.Add64(a[1], b[1], carry)
	t[2], carry = bits.Add64(a[2], b[2], carry)
	t[3], carry = bits.Add64(a[3], b[3], carry)
	var borrow uint64
	var r fep256
	r[0], borrow = bits.Sub64(t[0], p256Limbs[0], 0)
	r[1], borrow = bits.Sub64(t[1], p256Limbs[1], borrow)
	r[2], borrow = bits.Sub64(t[2], p256Limbs[2], borrow)
	r[3], borrow = bits.Sub64(t[3], p256Limbs[3], borrow)
	if carry == 1 || borrow == 0 {
		*v = r
	} else {
		*v = t
	}
}

func (v *fep256) Sub(a, b *fep256) {
	var borrow uint64
	var t fep256
	t[0], borrow = bits.Sub64(a[0], b[0], 0)
	t[1], borrow = bits.Sub64(a[1], b[1], borrow)
	t[2], borrow = bits.Sub64(a[2], b[2], borrow)
	t[3], borrow = bits.Sub64(a[3], b[3], borrow)
	if borrow == 1 {
		var carry uint64
		t[0], carry = bits.Add64(t[0], p256Limbs[0], 0)
		t[1], carry = bits.Add64(t[1], p256Limbs[1], carry)
		t[2], carry = bits.Add64(t[2], p256Limbs[2], carry)
		t[3], _ = bits.Add64(t[3], p256Limbs[3], carry)
	}
	*v = t
}

func (v *fep256) Neg(a *fep256) {
	var zero fep256
	if *a == zero {
		*v = zero
		return
	}
	var borrow uint64
	v[0], borrow = bits.Sub64(p256Limbs[0], a[0], 0)
	v[1], borrow = bits.Sub64(p256Limbs[1], a[1], borrow)
	v[2], borrow = bits.Sub64(p256Limbs[2], a[2], borrow)
	v[3], _ = bits.Sub64(p256Limbs[3], a[3], borrow)
}

func (v *fep256) IsZero() bool { return *v == fep256{} }

// fromBig enters the Montgomery domain: v = a * 2^256 mod p.
func (v *fep256) fromBig(a *big.Int) {
	if a.Sign() < 0 || a.Cmp(p256P) >= 0 {
		a = new(big.Int).Mod(a, p256P)
	}
	raw := p256LimbsOf(a)
	v.montMul(&raw, &p256R2)
}

// toBig leaves the Montgomery domain.
func (v *fep256) toBig() *big.Int {
	one := fep256{1, 0, 0, 0}
	var out fep256
	out.montMul(v, &one)
	return out.bigOf()
}

// Invert computes 1/a (big.Int modular inverse; batch callers amortize this
// to one call per slice via batchInvertP256).
func (v *fep256) Invert(a *fep256) {
	inv := new(big.Int).ModInverse(a.toBig(), p256P)
	if inv == nil {
		*v = fep256{}
		return
	}
	v.fromBig(inv)
}

// batchInvertP256 inverts every non-zero element in place with a single
// modular inversion (Montgomery trick); zero entries stay zero.
func batchInvertP256(vs []*fep256) {
	if len(vs) == 0 {
		return
	}
	prods := make([]fep256, len(vs))
	var acc fep256
	acc = p256MontID
	for i, v := range vs {
		prods[i] = acc
		if !v.IsZero() {
			acc.montMul(&acc, v)
		}
	}
	var inv fep256
	inv.Invert(&acc)
	for i := len(vs) - 1; i >= 0; i-- {
		v := vs[i]
		if v.IsZero() {
			continue
		}
		var tmp fep256
		tmp.montMul(&inv, &prods[i])
		inv.montMul(&inv, v)
		*v = tmp
	}
}

// --- Jacobian point arithmetic (a = -3) ---

// p256Point is a Jacobian point: affine x = X/Z^2, y = Y/Z^3; Z == 0 is the
// point at infinity.
type p256Point struct {
	x, y, z fep256
}

func (p *p256Point) setInfinity() { *p = p256Point{} }

func (p *p256Point) isInfinity() bool { return p.z.IsZero() }

// fromAffineBig loads an affine big.Int point (nil/zero means infinity).
func (p *p256Point) fromAffineBig(x, y *big.Int) {
	if x == nil || y == nil || (x.Sign() == 0 && y.Sign() == 0) {
		p.setInfinity()
		return
	}
	p.x.fromBig(x)
	p.y.fromBig(y)
	p.z = p256MontID
}

// affineBig returns the affine coordinates via a solo inversion (batch
// callers use normalizeP256 instead).
func (p *p256Point) affineBig() (x, y *big.Int) {
	if p.isInfinity() {
		return new(big.Int), new(big.Int)
	}
	var zinv, zinv2, zinv3, ax, ay fep256
	zinv.Invert(&p.z)
	zinv2.Square(&zinv)
	zinv3.montMul(&zinv2, &zinv)
	ax.montMul(&p.x, &zinv2)
	ay.montMul(&p.y, &zinv3)
	return ax.toBig(), ay.toBig()
}

// double sets p = 2q (dbl-2001-b, exploits a = -3).
func (p *p256Point) double(q *p256Point) {
	if q.isInfinity() {
		p.setInfinity()
		return
	}
	var delta, gamma, beta, alpha, t1, t2, x3, y3, z3 fep256
	delta.Square(&q.z)
	gamma.Square(&q.y)
	beta.montMul(&q.x, &gamma)
	t1.Sub(&q.x, &delta)
	t2.Add(&q.x, &delta)
	alpha.montMul(&t1, &t2)
	t1.Add(&alpha, &alpha)
	alpha.Add(&t1, &alpha) // 3*(x-delta)*(x+delta)
	x3.Square(&alpha)
	t1.Add(&beta, &beta)
	t1.Add(&t1, &t1)
	t2.Add(&t1, &t1) // 8*beta
	x3.Sub(&x3, &t2)
	z3.Add(&q.y, &q.z)
	z3.Square(&z3)
	z3.Sub(&z3, &gamma)
	z3.Sub(&z3, &delta)
	t1.Add(&beta, &beta)
	t1.Add(&t1, &t1) // 4*beta
	t1.Sub(&t1, &x3)
	y3.montMul(&alpha, &t1)
	t2.Square(&gamma)
	t1.Add(&t2, &t2)
	t1.Add(&t1, &t1)
	t1.Add(&t1, &t1) // 8*gamma^2
	y3.Sub(&y3, &t1)
	p.x, p.y, p.z = x3, y3, z3
}

// add sets p = q + r (add-2007-bl), handling infinity, q == r, q == -r.
func (p *p256Point) add(q, r *p256Point) {
	if q.isInfinity() {
		*p = *r
		return
	}
	if r.isInfinity() {
		*p = *q
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, rr, t fep256
	z1z1.Square(&q.z)
	z2z2.Square(&r.z)
	u1.montMul(&q.x, &z2z2)
	u2.montMul(&r.x, &z1z1)
	s1.montMul(&q.y, &r.z)
	s1.montMul(&s1, &z2z2)
	s2.montMul(&r.y, &q.z)
	s2.montMul(&s2, &z1z1)
	h.Sub(&u2, &u1)
	rr.Sub(&s2, &s1)
	if h.IsZero() {
		if rr.IsZero() {
			p.double(q)
		} else {
			p.setInfinity()
		}
		return
	}
	rr.Add(&rr, &rr) // r = 2*(s2-s1)
	var i, j, v, x3, y3, z3 fep256
	i.Add(&h, &h)
	i.Square(&i) // (2h)^2
	j.montMul(&h, &i)
	v.montMul(&u1, &i)
	x3.Square(&rr)
	x3.Sub(&x3, &j)
	t.Add(&v, &v)
	x3.Sub(&x3, &t)
	t.Sub(&v, &x3)
	y3.montMul(&rr, &t)
	t.montMul(&s1, &j)
	t.Add(&t, &t)
	y3.Sub(&y3, &t)
	z3.Add(&q.z, &r.z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.montMul(&z3, &h)
	p.x, p.y, p.z = x3, y3, z3
}

// p256Affine is an affine table entry (Montgomery-form coordinates).
type p256Affine struct {
	x, y fep256
	inf  bool
}

// addAffine sets p = q + e for an affine entry (madd-2007-bl, z2 == 1);
// sub negates the entry.
func (p *p256Point) addAffine(q *p256Point, e *p256Affine, sub bool) {
	if e.inf {
		*p = *q
		return
	}
	ey := e.y
	if sub {
		ey.Neg(&ey)
	}
	if q.isInfinity() {
		p.x, p.y, p.z = e.x, ey, p256MontID
		return
	}
	var z1z1, u2, s2, h, rr, t fep256
	z1z1.Square(&q.z)
	u2.montMul(&e.x, &z1z1)
	s2.montMul(&ey, &q.z)
	s2.montMul(&s2, &z1z1)
	h.Sub(&u2, &q.x)
	rr.Sub(&s2, &q.y)
	if h.IsZero() {
		if rr.IsZero() {
			p.double(q)
		} else {
			p.setInfinity()
		}
		return
	}
	rr.Add(&rr, &rr)
	var i, j, v, x3, y3, z3 fep256
	i.Add(&h, &h)
	i.Square(&i)
	j.montMul(&h, &i)
	v.montMul(&q.x, &i)
	x3.Square(&rr)
	x3.Sub(&x3, &j)
	t.Add(&v, &v)
	x3.Sub(&x3, &t)
	t.Sub(&v, &x3)
	y3.montMul(&rr, &t)
	t.montMul(&q.y, &j)
	t.Add(&t, &t)
	y3.Sub(&y3, &t)
	z3.montMul(&q.z, &h)
	z3.Add(&z3, &z3)
	p.x, p.y, p.z = x3, y3, z3
}

// normalizeP256 converts a slice of Jacobian points to z == 1 (Montgomery
// one) with a single shared inversion. Infinity entries are left as-is.
func normalizeP256(ps []*p256Point) {
	if len(ps) == 0 {
		return
	}
	zs := make([]*fep256, len(ps))
	for i, p := range ps {
		zs[i] = &p.z
	}
	batchInvertP256(zs)
	for _, p := range ps {
		if p.z.IsZero() {
			continue // infinity
		}
		var zinv2, zinv3 fep256
		zinv2.Square(&p.z)
		zinv3.montMul(&zinv2, &p.z)
		p.x.montMul(&p.x, &zinv2)
		p.y.montMul(&p.y, &zinv3)
		p.z = p256MontID
	}
}

// --- fixed-point comb table ---

// p256CombTable is the P-256 counterpart of edCombTable: entry [j][v-1] is
// (v * 2^(w*j)) * P in affine form, built with one shared inversion, so a
// fixed-point multiplication is one mixed add per digit and no doublings.
type p256CombTable struct {
	w       uint
	entries [][]p256Affine
}

func buildP256Comb(x, y *big.Int, w uint) *p256CombTable {
	positions := (256 + int(w) - 1) / int(w)
	half := 1 << (w - 1)
	var base p256Point
	base.fromAffineBig(x, y)
	ext := make([][]p256Point, positions)
	for j := 0; j < positions; j++ {
		ext[j] = make([]p256Point, half)
		ext[j][0] = base
		for v := 1; v < half; v++ {
			ext[j][v].add(&ext[j][v-1], &base)
		}
		if j < positions-1 {
			for i := uint(0); i < w; i++ {
				base.double(&base)
			}
		}
	}
	flat := make([]*p256Point, 0, positions*half)
	for j := range ext {
		for v := range ext[j] {
			flat = append(flat, &ext[j][v])
		}
	}
	normalizeP256(flat)
	t := &p256CombTable{w: w, entries: make([][]p256Affine, positions)}
	for j := range ext {
		t.entries[j] = make([]p256Affine, half)
		for v := range ext[j] {
			e := &t.entries[j][v]
			if ext[j][v].isInfinity() {
				e.inf = true
				continue
			}
			e.x = ext[j][v].x
			e.y = ext[j][v].y
		}
	}
	return t
}

// mulComb sets p = k*P for the table's fixed point (k: 32-byte big-endian).
func (t *p256CombTable) mulComb(p *p256Point, k []byte) {
	digits := make([]int16, len(t.entries))
	combDigits(k, t.w, digits)
	var acc p256Point
	for j, d := range digits {
		if d > 0 {
			acc.addAffine(&acc, &t.entries[j][d-1], false)
		} else if d < 0 {
			acc.addAffine(&acc, &t.entries[j][-d-1], true)
		}
	}
	*p = acc
}
