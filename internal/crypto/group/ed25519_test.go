package group

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// edModel is a big.Int affine model of the twisted Edwards curve
// -x^2 + y^2 = 1 + d x^2 y^2, used to cross-validate the fe25519 kernels.
type edModel struct{ x, y *big.Int }

func edModelIdentity() edModel {
	return edModel{big.NewInt(0), big.NewInt(1)}
}

func edModelD() *big.Int { return edD.toBig() }

// add on the affine model via the complete Edwards addition law.
func (p edModel) add(q edModel) edModel {
	P := p25519
	d := edModelD()
	x1y2 := new(big.Int).Mul(p.x, q.y)
	y1x2 := new(big.Int).Mul(p.y, q.x)
	y1y2 := new(big.Int).Mul(p.y, q.y)
	x1x2 := new(big.Int).Mul(p.x, q.x)
	t := new(big.Int).Mul(d, new(big.Int).Mul(x1x2, y1y2))
	t.Mod(t, P)
	one := big.NewInt(1)
	xden := new(big.Int).Add(one, t)
	yden := new(big.Int).Sub(one, t)
	x3 := new(big.Int).Add(x1y2, y1x2)
	x3.Mul(x3, new(big.Int).ModInverse(xden, P))
	x3.Mod(x3, P)
	y3 := new(big.Int).Add(y1y2, x1x2)
	y3.Mul(y3, new(big.Int).ModInverse(yden, P))
	y3.Mod(y3, P)
	return edModel{x3, y3}
}

func (p edModel) mul(k *big.Int) edModel {
	acc := edModelIdentity()
	add := p
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			acc = acc.add(add)
		}
		add = add.add(add)
	}
	return acc
}

func (p *edPoint) model(t *testing.T) edModel {
	t.Helper()
	P := p25519
	zinv := new(big.Int).ModInverse(p.z.toBig(), P)
	x := new(big.Int).Mul(p.x.toBig(), zinv)
	x.Mod(x, P)
	y := new(big.Int).Mul(p.y.toBig(), zinv)
	y.Mod(y, P)
	// check the T invariant: T*Z == X*Y
	tz := new(big.Int).Mul(p.t.toBig(), p.z.toBig())
	tz.Mod(tz, P)
	xy := new(big.Int).Mul(p.x.toBig(), p.y.toBig())
	xy.Mod(xy, P)
	if tz.Cmp(xy) != 0 {
		t.Fatal("extended coordinate invariant T*Z == X*Y violated")
	}
	return edModel{x, y}
}

func modelEqual(a, b edModel) bool {
	return a.x.Cmp(b.x) == 0 && a.y.Cmp(b.y) == 0
}

func checkOnCurve(t *testing.T, m edModel) {
	t.Helper()
	P := p25519
	d := edModelD()
	x2 := new(big.Int).Mul(m.x, m.x)
	y2 := new(big.Int).Mul(m.y, m.y)
	lhs := new(big.Int).Sub(y2, x2)
	lhs.Mod(lhs, P)
	rhs := new(big.Int).Mul(x2, y2)
	rhs.Mul(rhs, d)
	rhs.Add(rhs, big.NewInt(1))
	rhs.Mod(rhs, P)
	if lhs.Cmp(rhs) != 0 {
		t.Fatalf("point (%v, %v) not on curve", m.x, m.y)
	}
}

func randEdPoint(t *testing.T, r *mrand.Rand) *edPoint {
	t.Helper()
	var seed [32]byte
	r.Read(seed[:])
	return edHashToPoint(seed[:])
}

func randEdScalar(r *mrand.Rand) *big.Int {
	b := make([]byte, 32)
	r.Read(b)
	v := new(big.Int).SetBytes(b)
	return v.Mod(v, edOrder)
}

func TestEdBaseOnCurve(t *testing.T) {
	checkOnCurve(t, edBase.model(t))
	// base point must have order l: l*B == identity
	var kb [32]byte
	edOrder.FillBytes(kb[:])
	var digits [258]int8
	n := wnafDigits(kb[:], &digits)
	var p edPoint
	edScalarMulWNAF(&p, digits[:n], &edBase)
	if !p.isIdentity() {
		t.Fatal("l*B != identity")
	}
}

func TestEdAddDoubleVsModel(t *testing.T) {
	r := mrand.New(mrand.NewSource(10))
	for i := 0; i < 30; i++ {
		p := randEdPoint(t, r)
		q := randEdPoint(t, r)
		pm, qm := p.model(t), q.model(t)
		checkOnCurve(t, pm)

		var sum edPoint
		sum.add(p, q)
		if !modelEqual(sum.model(t), pm.add(qm)) {
			t.Fatal("add mismatch")
		}

		var dbl edPoint
		dbl.double(p, true)
		if !modelEqual(dbl.model(t), pm.add(pm)) {
			t.Fatal("double mismatch")
		}

		// P + (-P) == identity
		var np, id edPoint
		np.neg(p)
		id.add(p, &np)
		if !id.isIdentity() {
			t.Fatal("P + (-P) != identity")
		}

		// P + identity == P
		var idt, same edPoint
		idt.identity()
		same.add(p, &idt)
		if !modelEqual(same.model(t), pm) {
			t.Fatal("P + 0 != P")
		}

		// P == Q degenerate add (complete law must handle it)
		var pp edPoint
		pp.add(p, p)
		if !modelEqual(pp.model(t), pm.add(pm)) {
			t.Fatal("add(P, P) != double(P)")
		}
	}
}

func TestEdNielsFormsVsAdd(t *testing.T) {
	r := mrand.New(mrand.NewSource(11))
	for i := 0; i < 20; i++ {
		p := randEdPoint(t, r)
		q := randEdPoint(t, r)
		var want, got edPoint
		want.add(p, q)
		wm := want.model(t)

		var pn projNiels
		q.toProjNiels(&pn)
		got.addProjNiels(p, &pn, false)
		if !modelEqual(got.model(t), wm) {
			t.Fatal("addProjNiels mismatch")
		}

		// subtraction form
		var diff, nq edPoint
		nq.neg(q)
		diff.add(p, &nq)
		got.addProjNiels(p, &pn, true)
		if !modelEqual(got.model(t), diff.model(t)) {
			t.Fatal("addProjNiels sub mismatch")
		}

		// affine niels requires z == 1
		normalizeEd([]*edPoint{q})
		var an affineNiels
		q.toAffineNiels(&an)
		got.addAffineNiels(p, &an, false)
		if !modelEqual(got.model(t), wm) {
			t.Fatal("addAffineNiels mismatch")
		}
		got.addAffineNiels(p, &an, true)
		if !modelEqual(got.model(t), diff.model(t)) {
			t.Fatal("addAffineNiels sub mismatch")
		}
	}
}

func TestEdScalarMulVsModel(t *testing.T) {
	r := mrand.New(mrand.NewSource(12))
	for i := 0; i < 12; i++ {
		p := randEdPoint(t, r)
		k := randEdScalar(r)
		if i == 0 {
			k.SetInt64(0)
		}
		if i == 1 {
			k.SetInt64(1)
		}
		var kb [32]byte
		k.FillBytes(kb[:])
		var digits [258]int8
		n := wnafDigits(kb[:], &digits)
		var got edPoint
		edScalarMulWNAF(&got, digits[:n], p)
		want := p.model(t).mul(k)
		if !modelEqual(got.model(t), want) {
			t.Fatalf("wNAF mult mismatch at k=%v", k)
		}
	}
}

func TestEdCombVsModel(t *testing.T) {
	r := mrand.New(mrand.NewSource(13))
	for _, w := range []uint{6, 8} {
		p := randEdPoint(t, r)
		normalizeEd([]*edPoint{p})
		table := buildEdComb(p, w)
		for i := 0; i < 6; i++ {
			k := randEdScalar(r)
			if i == 0 {
				k.SetInt64(0)
			}
			var kb [32]byte
			k.FillBytes(kb[:])
			var got edPoint
			table.mulComb(&got, kb[:])
			want := p.model(t).mul(k)
			if !modelEqual(got.model(t), want) {
				t.Fatalf("comb w=%d mismatch at k=%v", w, k)
			}
		}
	}
}

func TestEdCombMatchesWNAF(t *testing.T) {
	// same scalar through both kernels must agree
	r := mrand.New(mrand.NewSource(14))
	p := randEdPoint(t, r)
	normalizeEd([]*edPoint{p})
	table := buildEdComb(p, 6)
	for i := 0; i < 10; i++ {
		k := randEdScalar(r)
		var kb [32]byte
		k.FillBytes(kb[:])
		var a, b edPoint
		table.mulComb(&a, kb[:])
		var digits [258]int8
		n := wnafDigits(kb[:], &digits)
		edScalarMulWNAF(&b, digits[:n], p)
		if !a.equal(&b) {
			t.Fatalf("comb vs wNAF mismatch at k=%v", k)
		}
	}
}

func TestEdNormalizeBatch(t *testing.T) {
	r := mrand.New(mrand.NewSource(15))
	pts := make([]*edPoint, 17)
	models := make([]edModel, len(pts))
	for i := range pts {
		if i == 5 {
			pts[i] = new(edPoint)
			pts[i].identity()
		} else {
			pts[i] = randEdPoint(t, r)
		}
		models[i] = pts[i].model(t)
	}
	normalizeEd(pts)
	for i, p := range pts {
		if !p.z.Equal(func() *fe25519 { var o fe25519; o.One(); return &o }()) {
			t.Fatalf("entry %d not normalized", i)
		}
		if !modelEqual(p.model(t), models[i]) {
			t.Fatalf("entry %d changed value during normalization", i)
		}
	}
}

func TestEdHashToPointSubgroup(t *testing.T) {
	// hash output must be on-curve and in the prime-order subgroup
	var lb [32]byte
	edOrder.FillBytes(lb[:])
	var digits [258]int8
	n := wnafDigits(lb[:], &digits)
	for i := 0; i < 8; i++ {
		p := edHashToPoint([]byte{byte(i), 0xab})
		checkOnCurve(t, p.model(t))
		var lp edPoint
		edScalarMulWNAF(&lp, digits[:n], p)
		if !lp.isIdentity() {
			t.Fatalf("hash point %d not in prime-order subgroup", i)
		}
		if p.isIdentity() {
			t.Fatalf("hash point %d is identity", i)
		}
	}
	// determinism
	a := edHashToPoint([]byte("crowd"))
	b := edHashToPoint([]byte("crowd"))
	if !a.equal(b) {
		t.Fatal("hash not deterministic")
	}
	c := edHashToPoint([]byte("other"))
	if a.equal(c) {
		t.Fatal("distinct inputs collided")
	}
}

func TestEdFromYRoundTrip(t *testing.T) {
	r := mrand.New(mrand.NewSource(16))
	for i := 0; i < 10; i++ {
		p := randEdPoint(t, r)
		normalizeEd([]*edPoint{p})
		xNeg := p.x.IsNegative()
		q, ok := edFromY(&p.y, xNeg)
		if !ok {
			t.Fatal("edFromY rejected a valid y")
		}
		if !p.equal(q) {
			t.Fatal("edFromY round trip mismatch")
		}
	}
}

func TestEdScalarMulRandomized(t *testing.T) {
	// (a+b)P == aP + bP with crypto/rand scalars
	for i := 0; i < 4; i++ {
		var seed [32]byte
		rand.Read(seed[:])
		p := edHashToPoint(seed[:])
		a, _ := new(big.Int).SetString("123456789123456789123456789", 10)
		b := new(big.Int).Sub(edOrder, big.NewInt(int64(i)+2))
		sum := new(big.Int).Add(a, b)
		sum.Mod(sum, edOrder)
		mulBy := func(k *big.Int) *edPoint {
			var kb [32]byte
			k.FillBytes(kb[:])
			var digits [258]int8
			n := wnafDigits(kb[:], &digits)
			var out edPoint
			edScalarMulWNAF(&out, digits[:n], p)
			return &out
		}
		var lhs edPoint
		lhs.add(mulBy(a), mulBy(b))
		if !lhs.equal(mulBy(sum)) {
			t.Fatal("(a+b)P != aP + bP")
		}
	}
}
