package group

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

func testGroups() []Group { return []Group{P256, Ristretto255} }

// detRng is a deterministic io.Reader for seeded-scalar tests.
type detRng struct{ r *rand.Rand }

func (d detRng) Read(p []byte) (int, error) { return d.r.Read(p) }

func randomElement(g Group, r *rand.Rand) Element {
	var seed [16]byte
	r.Read(seed[:])
	return g.HashToElement(seed[:])
}

func TestGroupLaws(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(40))
			rng := detRng{rand.New(rand.NewSource(41))}
			for i := 0; i < 10; i++ {
				p := randomElement(g, r)
				q := randomElement(g, r)

				// commutativity and identity
				if !g.Equal(g.Add(p, q), g.Add(q, p)) {
					t.Fatal("add not commutative")
				}
				if !g.Equal(g.Add(p, g.Identity()), p) {
					t.Fatal("identity not neutral")
				}
				if !g.IsIdentity(g.Add(p, g.Neg(p))) {
					t.Fatal("p + (-p) != identity")
				}
				if !g.Equal(g.Sub(p, q), g.Add(p, g.Neg(q))) {
					t.Fatal("sub != add neg")
				}

				// scalar laws
				a, err := g.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				b, err := g.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				// (a*P) + (b*P) == (a+b mod n)*P
				sum := ScalarToBig(a)
				sum.Add(sum, ScalarToBig(b))
				sum.Mod(sum, g.Order())
				lhs := g.Add(g.Mul(p, a), g.Mul(p, b))
				rhs := g.Mul(p, ScalarFromBig(sum))
				if !g.Equal(lhs, rhs) {
					t.Fatal("scalar distributivity failed")
				}
				// a*(b*P) == (a*b mod n)*P
				prod := ScalarToBig(a)
				prod.Mul(prod, ScalarToBig(b))
				prod.Mod(prod, g.Order())
				if !g.Equal(g.Mul(g.Mul(p, b), a), g.Mul(p, ScalarFromBig(prod))) {
					t.Fatal("scalar associativity failed")
				}
				// BaseMul vs Mul(Generator)
				if !g.Equal(g.BaseMul(a), g.Mul(g.Generator(), a)) {
					t.Fatal("BaseMul != Mul(G)")
				}
			}
		})
	}
}

func TestGroupEncodeDecode(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for i := 0; i < 10; i++ {
				p := randomElement(g, r)

				wire := g.Encode(p)
				if len(wire) != WireSize {
					t.Fatalf("wire size %d", len(wire))
				}
				back, err := g.Decode(wire)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(back, p) {
					t.Fatal("wire round trip mismatch")
				}

				comp := g.Compress(p)
				back2, err := g.Decode(comp)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(back2, p) {
					t.Fatal("compressed round trip mismatch")
				}

				// compression must be canonical: same element from two
				// different projective representatives
				doubleViaAdd := g.Add(p, p)
				viaMul := g.Mul(p, Scalar{2})
				if !bytes.Equal(g.Compress(doubleViaAdd), g.Compress(viaMul)) {
					t.Fatal("compression not canonical across representatives")
				}

				// backend inference
				ig, err := Infer(wire)
				if err != nil || ig.Name() != g.Name() {
					t.Fatalf("Infer(wire) = %v, %v", ig, err)
				}
				ig, err = Infer(comp)
				if err != nil || ig.Name() != g.Name() {
					t.Fatalf("Infer(comp) = %v, %v", ig, err)
				}
			}

			// identity encodings
			id := g.Identity()
			if !bytes.Equal(g.Encode(id), []byte{0}) || !bytes.Equal(g.Compress(id), []byte{0}) {
				t.Fatal("identity must use the 1-byte sentinel")
			}
			back, err := g.Decode([]byte{0})
			if err != nil || !g.IsIdentity(back) {
				t.Fatal("identity decode failed")
			}

			// junk must be rejected
			for _, junk := range [][]byte{nil, {1}, {0, 0}, make([]byte, WireSize), make([]byte, 64)} {
				if _, err := g.Decode(junk); err == nil {
					t.Fatalf("junk %v decoded", junk)
				}
			}
			// corrupted wire point (off curve)
			p := randomElement(g, rand.New(rand.NewSource(7)))
			wire := g.Encode(p)
			wire[20] ^= 0x40
			if _, err := g.Decode(wire); err == nil {
				t.Fatal("off-curve wire point decoded")
			}
		})
	}
}

func TestGroupMulBatchEquivalence(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(43))
			rng := detRng{rand.New(rand.NewSource(44))}
			k, err := g.RandomScalar(rng)
			if err != nil {
				t.Fatal(err)
			}
			ps := make([]Element, 9)
			want := make([]Element, len(ps))
			for i := range ps {
				if i == 3 {
					ps[i] = g.Identity()
				} else {
					ps[i] = randomElement(g, r)
				}
				want[i] = g.Mul(ps[i], k)
			}
			dst := make([]Element, len(ps))
			g.MulBatch(dst, ps, k)
			for i := range dst {
				if !g.Equal(dst[i], want[i]) {
					t.Fatalf("MulBatch entry %d != Mul", i)
				}
			}
			// normalized results must encode identically to solo results
			g.Normalize(dst)
			for i := range dst {
				if !bytes.Equal(g.Encode(dst[i]), g.Encode(want[i])) {
					t.Fatalf("entry %d encoding mismatch after Normalize", i)
				}
			}
		})
	}
}

func TestGroupPrecomputeEquivalence(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(45))
			rng := detRng{rand.New(rand.NewSource(46))}
			p := randomElement(g, r)
			table := g.Precompute(p)
			for i := 0; i < 6; i++ {
				k, err := g.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(table.Mul(k), g.Mul(p, k)) {
					t.Fatal("Precompute table disagrees with Mul")
				}
			}
		})
	}
}

func TestGroupDH(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			rng := detRng{rand.New(rand.NewSource(47))}
			// standard ECDH consistency: both sides derive the same bytes
			aPriv, _ := g.RandomScalar(rng)
			bPriv, _ := g.RandomScalar(rng)
			aPub := g.BaseMul(aPriv)
			bPub := g.BaseMul(bPriv)
			// receivers decode the wire form, as the daemons do
			aPubD, err := g.Decode(g.Encode(aPub))
			if err != nil {
				t.Fatal(err)
			}
			bPubD, err := g.Decode(g.Encode(bPub))
			if err != nil {
				t.Fatal(err)
			}
			s1 := g.SharedBytes(g.MulDH(bPubD, g.PrepareDH(aPriv)))
			s2 := g.SharedBytes(g.MulDH(aPubD, g.PrepareDH(bPriv)))
			if len(s1) != 32 || !bytes.Equal(s1, s2) {
				t.Fatal("DH shared secrets disagree")
			}
			// and they agree with the plain scalar product
			prod := ScalarToBig(aPriv)
			prod.Mul(prod, ScalarToBig(bPriv))
			prod.Mod(prod, g.Order())
			s3 := g.SharedBytes(g.BaseMul(ScalarFromBig(prod)))
			if !bytes.Equal(s1, s3) {
				t.Fatal("DH disagrees with direct scalar product")
			}
		})
	}
}

func TestGroupHashToElement(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			seen := map[string]bool{}
			for i := 0; i < 20; i++ {
				data := []byte{byte(i), 0x5a}
				p := g.HashToElement(data)
				q := g.HashToElement(data)
				if !g.Equal(p, q) {
					t.Fatal("hash not deterministic")
				}
				if g.IsIdentity(p) {
					t.Fatal("hash produced identity")
				}
				key := string(g.Compress(p))
				if seen[key] {
					t.Fatal("hash collision across distinct inputs")
				}
				seen[key] = true
			}
		})
	}
}

func TestGroupRandomScalarRange(t *testing.T) {
	for _, g := range testGroups() {
		t.Run(g.Name(), func(t *testing.T) {
			rng := detRng{rand.New(rand.NewSource(48))}
			for i := 0; i < 50; i++ {
				k, err := g.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				if len(k) != ScalarSize {
					t.Fatalf("scalar size %d", len(k))
				}
				v := ScalarToBig(k)
				if v.Sign() == 0 || v.Cmp(g.Order()) >= 0 {
					t.Fatalf("scalar out of range: %v", v)
				}
			}
			// determinism: same seed, same scalars
			r1 := detRng{rand.New(rand.NewSource(99))}
			r2 := detRng{rand.New(rand.NewSource(99))}
			for i := 0; i < 10; i++ {
				k1, _ := g.RandomScalar(r1)
				k2, _ := g.RandomScalar(r2)
				if !bytes.Equal(k1, k2) {
					t.Fatal("seeded scalars diverged")
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"p256": "p256", "P-256": "p256",
		"ristretto255": "ristretto255", "ristretto": "ristretto255",
		"": Default().Name(),
	} {
		g, err := ByName(name)
		if err != nil || g.Name() != want {
			t.Fatalf("ByName(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := ByName("curve9000"); err == nil {
		t.Fatal("unknown group accepted")
	}
	if Default().Name() != "ristretto255" {
		t.Fatal("default group changed unexpectedly")
	}
}

func TestGroupCrossBackendMixingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixing backends must panic")
		}
	}()
	p := Ristretto255.HashToElement([]byte("x"))
	P256.Add(p, P256.Identity())
}

// TestHashDomainSeparation pins that the two backends hash the same input
// to unrelated elements (different hash constructions entirely), so a
// cross-backend deployment cannot silently alias crowds.
func TestHashDomainSeparation(t *testing.T) {
	in := []byte("crowd-42")
	a := sha256.Sum256(P256.Compress(P256.HashToElement(in)))
	b := sha256.Sum256(Ristretto255.Compress(Ristretto255.HashToElement(in)))
	if a == b {
		t.Fatal("backends produced identical hash encodings")
	}
}
