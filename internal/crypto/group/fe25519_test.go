package group

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

// feBoundary returns interesting field values for edge-case testing.
func feBoundary() []*big.Int {
	p := p25519
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(19),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Sub(p, big.NewInt(19)),
		new(big.Int).Rsh(p, 1),
	}
	return vals
}

func randFieldBig(r *rand.Rand) *big.Int {
	b := make([]byte, 32)
	r.Read(b)
	v := new(big.Int).SetBytes(b)
	return v.Mod(v, p25519)
}

func TestFe25519RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := feBoundary()
	for i := 0; i < 200; i++ {
		vals = append(vals, randFieldBig(r))
	}
	for _, v := range vals {
		var fe fe25519
		fe.fromBig(v)
		got := fe.toBig()
		if got.Cmp(v) != 0 {
			t.Fatalf("round trip %v: got %v", v, got)
		}
		// Bytes/SetBytes round trip
		b := fe.Bytes(nil)
		var fe2 fe25519
		fe2.SetBytes(b)
		if fe2.toBig().Cmp(v) != 0 {
			t.Fatalf("bytes round trip %v: got %v", v, fe2.toBig())
		}
	}
}

func TestFe25519Arithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := p25519
	check := func(name string, got *fe25519, want *big.Int) {
		t.Helper()
		w := new(big.Int).Mod(want, p)
		if g := got.toBig(); g.Cmp(w) != 0 {
			t.Fatalf("%s: got %v want %v", name, g, w)
		}
	}
	vals := feBoundary()
	for i := 0; i < 100; i++ {
		vals = append(vals, randFieldBig(r))
	}
	for i, av := range vals {
		bv := vals[(i*7+3)%len(vals)]
		var a, b, out fe25519
		a.fromBig(av)
		b.fromBig(bv)

		out.Add(&a, &b)
		check("add", &out, new(big.Int).Add(av, bv))
		out.Sub(&a, &b)
		check("sub", &out, new(big.Int).Sub(av, bv))
		out.Mul(&a, &b)
		check("mul", &out, new(big.Int).Mul(av, bv))
		out.Square(&a)
		check("square", &out, new(big.Int).Mul(av, av))
		out.Neg(&a)
		check("neg", &out, new(big.Int).Neg(av))
		if av.Sign() != 0 {
			out.Invert(&a)
			check("invert", &out, new(big.Int).ModInverse(av, p))
		}
	}
}

func TestFe25519ChainedOps(t *testing.T) {
	// exercise lazy-carry accumulation: long chains of add/sub/mul without
	// intermediate full reductions
	r := rand.New(rand.NewSource(3))
	var acc fe25519
	acc.One()
	want := big.NewInt(1)
	for i := 0; i < 500; i++ {
		v := randFieldBig(r)
		var fe fe25519
		fe.fromBig(v)
		switch i % 4 {
		case 0:
			acc.Add(&acc, &fe)
			want.Add(want, v)
		case 1:
			acc.Sub(&acc, &fe)
			want.Sub(want, v)
		case 2:
			acc.Mul(&acc, &fe)
			want.Mul(want, v)
		case 3:
			acc.Square(&acc)
			want.Mul(want, want)
		}
		want.Mod(want, p25519)
	}
	if got := acc.toBig(); got.Cmp(want) != 0 {
		t.Fatalf("chained ops diverged: got %v want %v", got, want)
	}
}

func TestFe25519IsNegativeAbs(t *testing.T) {
	var fe fe25519
	fe.fromBig(big.NewInt(2))
	if fe.IsNegative() {
		t.Fatal("2 should be non-negative")
	}
	fe.fromBig(big.NewInt(3))
	if !fe.IsNegative() {
		t.Fatal("3 should be negative (odd)")
	}
	fe.Abs(&fe)
	want := new(big.Int).Sub(p25519, big.NewInt(3))
	if fe.toBig().Cmp(want) != 0 {
		t.Fatalf("abs(3) = %v, want p-3", fe.toBig())
	}
}

func TestFe25519SqrtRatio(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := p25519
	for i := 0; i < 100; i++ {
		uv := randFieldBig(r)
		wv := randFieldBig(r)
		if wv.Sign() == 0 {
			continue
		}
		var u, w, out fe25519
		u.fromBig(uv)
		w.fromBig(wv)
		ok := out.SqrtRatio(&u, &w)
		// expected: ok iff u/w is a QR
		ratio := new(big.Int).ModInverse(wv, p)
		ratio.Mul(ratio, uv)
		ratio.Mod(ratio, p)
		root := new(big.Int).ModSqrt(ratio, p)
		if (root != nil) != ok {
			t.Fatalf("SqrtRatio(%v/%v): wasSquare=%v want %v", uv, wv, ok, root != nil)
		}
		if ok {
			// out^2 * w == u
			got := out.toBig()
			got.Mul(got, got)
			got.Mul(got, wv)
			got.Mod(got, p)
			if got.Cmp(new(big.Int).Mod(uv, p)) != 0 {
				t.Fatalf("SqrtRatio root check failed")
			}
			if out.IsNegative() {
				t.Fatal("SqrtRatio must return the non-negative root")
			}
		}
	}
	// u == 0: root is 0, wasSquare true
	var zero, w, out fe25519
	w.fromBig(big.NewInt(7))
	if !out.SqrtRatio(&zero, &w) || !out.IsZero() {
		t.Fatal("SqrtRatio(0, w) should be (0, true)")
	}
}

func TestBatchInvert25519(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 7, 64} {
		fes := make([]*fe25519, n)
		want := make([]*big.Int, n)
		for i := range fes {
			fes[i] = new(fe25519)
			if i%5 == 3 {
				// zero entries must be preserved as zero
				want[i] = big.NewInt(0)
			} else {
				v := randFieldBig(r)
				if v.Sign() == 0 {
					v = big.NewInt(1)
				}
				fes[i].fromBig(v)
				want[i] = new(big.Int).ModInverse(v, p25519)
			}
		}
		batchInvert25519(fes)
		for i := range fes {
			if got := fes[i].toBig(); got.Cmp(want[i]) != 0 {
				t.Fatalf("n=%d entry %d: got %v want %v", n, i, got, want[i])
			}
		}
	}
}

func TestFe25519NonCanonicalSetBytes(t *testing.T) {
	// encodings >= p must still reduce correctly via SetBytes
	for _, delta := range []int64{0, 1, 18} {
		v := new(big.Int).Add(p25519, big.NewInt(delta))
		b := make([]byte, 32)
		vb := v.Bytes()
		for i := range vb {
			b[len(vb)-1-i] = vb[i] // little-endian
		}
		if isCanonicalBytes25519(b) {
			t.Fatalf("p+%d should not be canonical", delta)
		}
		var fe fe25519
		fe.SetBytes(b)
		if fe.toBig().Cmp(big.NewInt(delta)) != 0 {
			t.Fatalf("SetBytes(p+%d) = %v", delta, fe.toBig())
		}
	}
	var fe fe25519
	fe.fromBig(new(big.Int).Sub(p25519, big.NewInt(1)))
	if !isCanonicalBytes25519(fe.Bytes(nil)) {
		t.Fatal("p-1 should be canonical")
	}
	if !bytes.Equal(fe.Bytes(nil), fe.Bytes(nil)) {
		t.Fatal("Bytes not deterministic")
	}
}
