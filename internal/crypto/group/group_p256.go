// The P-256 Group backend. Point addition, normalization, and fixed-point
// comb multiplication run on the Jacobian/Montgomery kernels in p256.go;
// variable-point and base-point multiplications delegate to crypto/elliptic,
// whose assembly nistec code is faster than any portable Go kernel. Wire
// and compressed encodings are SEC1, byte-compatible with the
// crypto/elliptic + crypto/ecdh paths this backend replaced.

package group

import (
	"crypto/elliptic"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"math/big"
)

type p256Group struct{}

func (p256Group) Name() string    { return "p256" }
func (p256Group) Order() *big.Int { return p256N }

func (p256Group) RandomScalar(rng io.Reader) (Scalar, error) {
	// True rejection sampling in [1, n-1]: each attempt consumes exactly
	// 32 bytes, so seeded streams are deterministic; a candidate out of
	// range is discarded, never folded back with Mod (which would bias
	// low residues).
	var b [32]byte
	for {
		if _, err := io.ReadFull(rng, b[:]); err != nil {
			return nil, err
		}
		k := new(big.Int).SetBytes(b[:])
		if k.Sign() != 0 && k.Cmp(p256N) < 0 {
			return ScalarFromBig(k), nil
		}
	}
}

func (p256Group) Identity() Element { return Element{pj: &p256Point{}} }

func (p256Group) Generator() Element {
	var p p256Point
	p.fromAffineBig(p256Curve.Params().Gx, p256Curve.Params().Gy)
	return Element{pj: &p}
}

func (g p256Group) BaseMul(k Scalar) Element {
	kb := mustScalar(k)
	x, y := p256Curve.ScalarBaseMult(kb[:])
	var p p256Point
	p.fromAffineBig(x, y)
	return Element{pj: &p}
}

func (g p256Group) Mul(p Element, k Scalar) Element {
	pt := p.p256(g)
	if pt.isInfinity() {
		return g.Identity()
	}
	kb := mustScalar(k)
	ax, ay := pt.affineBig()
	x, y := p256Curve.ScalarMult(ax, ay, kb[:])
	var out p256Point
	out.fromAffineBig(x, y)
	return Element{pj: &out}
}

func (g p256Group) MulBatch(dst, ps []Element, k Scalar) {
	if len(dst) != len(ps) {
		panic("group: MulBatch length mismatch")
	}
	kb := mustScalar(k)
	// normalize inputs first so each ScalarMult gets affine coordinates
	// from one shared inversion instead of one per point
	g.Normalize(ps)
	for i := range ps {
		pt := ps[i].p256(g)
		if pt.isInfinity() {
			dst[i] = g.Identity()
			continue
		}
		x, y := p256Curve.ScalarMult(pt.x.toBig(), pt.y.toBig(), kb[:])
		var out p256Point
		out.fromAffineBig(x, y)
		dst[i] = Element{pj: &out}
	}
}

type p256Table struct {
	comb *p256CombTable
}

func (t *p256Table) Mul(k Scalar) Element {
	kb := mustScalar(k)
	var out p256Point
	t.comb.mulComb(&out, kb[:])
	return Element{pj: &out}
}

func (g p256Group) Precompute(p Element) Table {
	pt := p.p256(g)
	x, y := pt.affineBig()
	return &p256Table{comb: buildP256Comb(x, y, 6)}
}

func (g p256Group) Add(p, q Element) Element {
	var out p256Point
	out.add(p.p256(g), q.p256(g))
	return Element{pj: &out}
}

func (g p256Group) Sub(p, q Element) Element {
	var nq p256Point
	qq := q.p256(g)
	if !qq.isInfinity() {
		nq = *qq
		nq.y.Neg(&nq.y)
	}
	var out p256Point
	out.add(p.p256(g), &nq)
	return Element{pj: &out}
}

func (g p256Group) Neg(p Element) Element {
	pt := p.p256(g)
	if pt.isInfinity() {
		return g.Identity()
	}
	out := *pt
	out.y.Neg(&out.y)
	return Element{pj: &out}
}

func (g p256Group) Equal(p, q Element) bool {
	a, b := p.p256(g), q.p256(g)
	if a.isInfinity() || b.isInfinity() {
		return a.isInfinity() == b.isInfinity()
	}
	// x1*z2^2 == x2*z1^2 and y1*z2^3 == y2*z1^3
	var z1z1, z2z2, t1, t2 fep256
	z1z1.Square(&a.z)
	z2z2.Square(&b.z)
	t1.montMul(&a.x, &z2z2)
	t2.montMul(&b.x, &z1z1)
	if t1 != t2 {
		return false
	}
	var z1z1z1, z2z2z2 fep256
	z1z1z1.montMul(&z1z1, &a.z)
	z2z2z2.montMul(&z2z2, &b.z)
	t1.montMul(&a.y, &z2z2z2)
	t2.montMul(&b.y, &z1z1z1)
	return t1 == t2
}

func (g p256Group) IsIdentity(p Element) bool { return p.p256(g).isInfinity() }

// p256HashParams holds the constants of the try-and-increment loop, hoisted
// out of the per-candidate iteration: the historical implementation
// allocated big.NewInt(3) and re-fetched curve.Params() on every attempt.
var p256HashParams = struct {
	p, b, three *big.Int
}{p256P, p256Curve.Params().B, big.NewInt(3)}

func (g p256Group) HashToElement(data []byte) Element {
	p := p256HashParams.p
	b := p256HashParams.b
	three := p256HashParams.three
	h := sha256.New()
	var cb [4]byte
	for ctr := uint32(0); ; ctr++ {
		h.Reset()
		h.Write([]byte("prochlo-h2c"))
		h.Write(data)
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		x := new(big.Int).SetBytes(h.Sum(nil))
		x.Mod(x, p)
		// y^2 = x^3 - 3x + b mod p
		y2 := new(big.Int).Exp(x, three, p)
		y2.Sub(y2, new(big.Int).Mul(three, x))
		y2.Add(y2, b)
		y2.Mod(y2, p)
		y := new(big.Int).ModSqrt(y2, p)
		if y == nil {
			continue
		}
		var out p256Point
		out.fromAffineBig(x, y)
		return Element{pj: &out}
	}
}

func (g p256Group) Normalize(ps []Element) {
	pts := make([]*p256Point, len(ps))
	for i := range ps {
		pts[i] = ps[i].p256(g)
		ps[i] = Element{pj: pts[i]}
	}
	normalizeP256(pts)
}

// p256BytesOf writes the canonical big-endian bytes of a Montgomery field
// element without going through big.Int.
func p256BytesOf(v *fep256, dst []byte) {
	one := fep256{1, 0, 0, 0}
	var plain fep256
	plain.montMul(v, &one)
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint64(dst[24-8*i:], plain[i])
	}
}

func (g p256Group) Encode(p Element) []byte {
	pt := p.p256(g)
	if pt.isInfinity() {
		return identityEncoding
	}
	if pt.z != p256MontID {
		normalizeP256([]*p256Point{pt})
	}
	out := make([]byte, WireSize)
	out[0] = tagP256
	p256BytesOf(&pt.x, out[1:33])
	p256BytesOf(&pt.y, out[33:65])
	return out
}

func (g p256Group) Compress(p Element) []byte {
	pt := p.p256(g)
	if pt.isInfinity() {
		return identityEncoding
	}
	if pt.z != p256MontID {
		normalizeP256([]*p256Point{pt})
	}
	out := make([]byte, 33)
	p256BytesOf(&pt.x, out[1:])
	var ybytes [32]byte
	p256BytesOf(&pt.y, ybytes[:])
	out[0] = 0x02 | (ybytes[31] & 1)
	return out
}

// p256OnCurve checks y^2 == x^3 - 3x + b in the Montgomery field.
func p256OnCurve(x, y *fep256) bool {
	var lhs, rhs, t fep256
	lhs.Square(y)
	rhs.Square(x)
	rhs.montMul(&rhs, x)
	t.montMul(&p256Mont3, x)
	rhs.Sub(&rhs, &t)
	rhs.Add(&rhs, &p256MontB)
	return lhs == rhs
}

func (g p256Group) Decode(b []byte) (Element, error) {
	switch {
	case len(b) == 1 && b[0] == 0:
		return g.Identity(), nil
	case len(b) == WireSize && b[0] == tagP256:
		xb := new(big.Int).SetBytes(b[1:33])
		yb := new(big.Int).SetBytes(b[33:65])
		if xb.Cmp(p256P) >= 0 || yb.Cmp(p256P) >= 0 {
			return Element{}, errors.New("group: p256 coordinate out of range")
		}
		var pt p256Point
		pt.fromAffineBig(xb, yb)
		if pt.isInfinity() || !p256OnCurve(&pt.x, &pt.y) {
			return Element{}, errors.New("group: p256 point not on curve")
		}
		return Element{pj: &pt}, nil
	case len(b) == 33 && (b[0] == 0x02 || b[0] == 0x03):
		x, y := elliptic.UnmarshalCompressed(p256Curve, b)
		if x == nil {
			return Element{}, errors.New("group: invalid compressed p256 point")
		}
		var pt p256Point
		pt.fromAffineBig(x, y)
		return Element{pj: &pt}, nil
	}
	return Element{}, errors.New("group: invalid p256 encoding")
}

func (p256Group) PrepareDH(k Scalar) Scalar {
	out := make(Scalar, len(k))
	copy(out, k)
	return out
}

func (g p256Group) MulDH(p Element, k Scalar) Element { return g.Mul(p, k) }

func (g p256Group) SharedBytes(p Element) []byte {
	pt := p.p256(g)
	if pt.isInfinity() {
		return nil
	}
	if pt.z != p256MontID {
		normalizeP256([]*p256Point{pt})
	}
	out := make([]byte, 32)
	p256BytesOf(&pt.x, out)
	return out
}

// p256 extracts the backend point, treating the zero Element as identity
// and rejecting cross-backend mixing.
func (e Element) p256(p256Group) *p256Point {
	if e.ed != nil {
		panic("group: ristretto255 element passed to the p256 group")
	}
	if e.pj == nil {
		return &p256Point{}
	}
	return e.pj
}
