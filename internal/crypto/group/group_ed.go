// The ristretto255 Group backend: arithmetic in the prime-order subgroup of
// edwards25519 on the extended-coordinate kernels in ed25519.go, ristretto
// Elligator hash-to-group with cofactor clearing, and a DH path that
// multiplies untrusted points by the cofactor (compensated by 8^-1 folded
// into the prepared private scalar) so small-subgroup components can never
// probe a private key.
//
// Encodings: the 65-byte wire form is 0x05 || x || y (little-endian field
// elements, canonical), so parsing costs a curve-equation check and no
// square root; the 32-byte compressed form packs Edwards y with the sign of
// x in the top bit (RFC 8032 layout). Within the prime-order subgroup the
// affine pair is unique per element, which makes both forms canonical —
// two equal elements always compress identically, the property the blinded
// pseudonym histogram keys rely on. Decoded points are only guaranteed
// subgroup members when they came from honest encoders; a torsion component
// added by a malicious client changes only that client's own pseudonym
// (self-harm equivalent to submitting a random crowd ID), and the DH path
// clears it.

package group

import (
	"errors"
	"io"
	"math/big"
)

type edGroup struct{}

func (edGroup) Name() string    { return "ristretto255" }
func (edGroup) Order() *big.Int { return edOrder }

func (edGroup) RandomScalar(rng io.Reader) (Scalar, error) {
	// Wide reduction: 64 uniform bytes mod the ~252-bit order leave
	// negligible bias, and every attempt consumes exactly 64 bytes so
	// seeded streams stay deterministic. Zero (probability ~2^-252) is
	// rejected to keep scalars invertible.
	var b [64]byte
	for {
		if _, err := io.ReadFull(rng, b[:]); err != nil {
			return nil, err
		}
		k := new(big.Int).SetBytes(b[:])
		k.Mod(k, edOrder)
		if k.Sign() != 0 {
			return ScalarFromBig(k), nil
		}
	}
}

func (edGroup) Identity() Element {
	var p edPoint
	p.identity()
	return Element{ed: &p}
}

func (edGroup) Generator() Element {
	p := edBase
	return Element{ed: &p}
}

func (g edGroup) BaseMul(k Scalar) Element {
	kb := mustScalar(k)
	var out edPoint
	edBaseComb().mulComb(&out, kb[:])
	return Element{ed: &out}
}

func (g edGroup) Mul(p Element, k Scalar) Element {
	kb := mustScalar(k)
	var digits [258]int8
	n := wnafDigits(kb[:], &digits)
	var out edPoint
	edScalarMulWNAF(&out, digits[:n], p.edwards(g))
	return Element{ed: &out}
}

func (g edGroup) MulBatch(dst, ps []Element, k Scalar) {
	if len(dst) != len(ps) {
		panic("group: MulBatch length mismatch")
	}
	kb := mustScalar(k)
	// recode the shared scalar once per slice
	var digits [258]int8
	n := wnafDigits(kb[:], &digits)
	for i := range ps {
		var out edPoint
		edScalarMulWNAF(&out, digits[:n], ps[i].edwards(g))
		dst[i] = Element{ed: &out}
	}
}

type edTable struct {
	comb *edCombTable
}

func (t *edTable) Mul(k Scalar) Element {
	kb := mustScalar(k)
	var out edPoint
	t.comb.mulComb(&out, kb[:])
	return Element{ed: &out}
}

func (g edGroup) Precompute(p Element) Table {
	pt := *p.edwards(g)
	normalizeEd([]*edPoint{&pt})
	return &edTable{comb: buildEdComb(&pt, 6)}
}

func (g edGroup) Add(p, q Element) Element {
	var out edPoint
	out.add(p.edwards(g), q.edwards(g))
	return Element{ed: &out}
}

func (g edGroup) Sub(p, q Element) Element {
	var nq, out edPoint
	nq.neg(q.edwards(g))
	out.add(p.edwards(g), &nq)
	return Element{ed: &out}
}

func (g edGroup) Neg(p Element) Element {
	var out edPoint
	out.neg(p.edwards(g))
	return Element{ed: &out}
}

func (g edGroup) Equal(p, q Element) bool { return p.edwards(g).equal(q.edwards(g)) }

func (g edGroup) IsIdentity(p Element) bool { return p.edwards(g).isIdentity() }

func (g edGroup) HashToElement(data []byte) Element {
	return Element{ed: edHashToPoint(data)}
}

func (g edGroup) Normalize(ps []Element) {
	pts := make([]*edPoint, len(ps))
	for i := range ps {
		pts[i] = ps[i].edwards(g)
		ps[i] = Element{ed: pts[i]}
	}
	normalizeEd(pts)
}

func (g edGroup) Encode(p Element) []byte {
	pt := p.edwards(g)
	if pt.isIdentity() {
		return identityEncoding
	}
	var one fe25519
	one.One()
	if !pt.z.Equal(&one) {
		normalizeEd([]*edPoint{pt})
	}
	out := make([]byte, WireSize)
	out[0] = tagRistretto
	pt.x.Bytes(out[1:1:33])
	pt.y.Bytes(out[33:33:65])
	return out
}

func (g edGroup) Compress(p Element) []byte {
	pt := p.edwards(g)
	if pt.isIdentity() {
		return identityEncoding
	}
	var one fe25519
	one.One()
	if !pt.z.Equal(&one) {
		normalizeEd([]*edPoint{pt})
	}
	out := pt.y.Bytes(make([]byte, 0, 32))
	if pt.x.IsNegative() {
		out[31] |= 0x80
	}
	return out
}

// edOnCurve checks -x^2 + y^2 == 1 + d*x^2*y^2.
func edOnCurve(x, y *fe25519) bool {
	var x2, y2, lhs, rhs, one fe25519
	one.One()
	x2.Square(x)
	y2.Square(y)
	lhs.Sub(&y2, &x2)
	rhs.Mul(&x2, &y2)
	rhs.Mul(&rhs, &edD)
	rhs.Add(&rhs, &one)
	return lhs.Equal(&rhs)
}

func (g edGroup) Decode(b []byte) (Element, error) {
	switch {
	case len(b) == 1 && b[0] == 0:
		return g.Identity(), nil
	case len(b) == WireSize && b[0] == tagRistretto:
		if !isCanonicalBytes25519(b[1:33]) || b[32]&0x80 != 0 ||
			!isCanonicalBytes25519(b[33:65]) || b[64]&0x80 != 0 {
			return Element{}, errors.New("group: non-canonical ristretto255 coordinate")
		}
		var pt edPoint
		pt.x.SetBytes(b[1:33])
		pt.y.SetBytes(b[33:65])
		if !edOnCurve(&pt.x, &pt.y) {
			return Element{}, errors.New("group: ristretto255 point not on curve")
		}
		pt.z.One()
		pt.t.Mul(&pt.x, &pt.y)
		if pt.isIdentity() {
			return Element{}, errors.New("group: identity must use the 1-byte encoding")
		}
		return Element{ed: &pt}, nil
	case len(b) == 32:
		yb := make([]byte, 32)
		copy(yb, b)
		xNeg := yb[31]&0x80 != 0
		yb[31] &= 0x7f
		if !isCanonicalBytes25519(yb) {
			return Element{}, errors.New("group: non-canonical ristretto255 y")
		}
		var y fe25519
		y.SetBytes(yb)
		pt, ok := edFromY(&y, xNeg)
		if !ok {
			return Element{}, errors.New("group: invalid compressed ristretto255 point")
		}
		return Element{ed: pt}, nil
	}
	return Element{}, errors.New("group: invalid ristretto255 encoding")
}

func (edGroup) PrepareDH(k Scalar) Scalar {
	// Fold 8^-1 mod l into the scalar: MulDH multiplies untrusted points
	// by 8 (cofactor clearing), and the inverse factor cancels it for
	// honest subgroup points, leaving k*P.
	v := new(big.Int).SetBytes(k)
	v.Mul(v, edInv8)
	v.Mod(v, edOrder)
	return ScalarFromBig(v)
}

func (g edGroup) MulDH(p Element, k Scalar) Element {
	var cleared edPoint
	cleared.clearCofactor(p.edwards(g))
	return g.Mul(Element{ed: &cleared}, k)
}

func (g edGroup) SharedBytes(p Element) []byte {
	return g.Compress(p)
}

// edwards extracts the backend point, treating the zero Element as identity
// and rejecting cross-backend mixing.
func (e Element) edwards(edGroup) *edPoint {
	if e.pj != nil {
		panic("group: p256 element passed to the ristretto255 group")
	}
	if e.ed == nil {
		var p edPoint
		p.identity()
		return &p
	}
	return e.ed
}
