package group

import (
	"math/big"
	"testing"
)

func BenchmarkFe25519Mul(b *testing.B) {
	var x, y fe25519
	x.fromBig(new(big.Int).Rsh(p25519, 1))
	y.One()
	y.Add(&y, &x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Mul(&x, &y)
	}
}

func BenchmarkFe25519Square(b *testing.B) {
	var x fe25519
	x.fromBig(new(big.Int).Rsh(p25519, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Square(&x)
	}
}
