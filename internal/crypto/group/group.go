// Package group abstracts the prime-order groups used by the crowd-ID
// El Gamal layer and the hybrid envelope layer behind a small
// Group/Element/Scalar interface, so the Prochlo chain can run on either
// NIST P-256 (crypto/elliptic-compatible, the historical default) or
// ristretto255 (edwards25519's prime-order subgroup, the faster pure-Go
// backend and the current default).
//
// The API is batch-oriented: projective kernels (Jacobian for P-256,
// extended Edwards for ristretto255) never invert per operation, Normalize
// converts an epoch-sized slice to affine with one shared field inversion
// (Montgomery trick), and Precompute builds signed-digit comb tables for
// points that are fixed across a batch — the recipient key in the encoder,
// the analyzer key — turning each fixed-point multiplication into ~43 table
// additions with no doublings.
//
// Wire encodings are uniform across backends: Encode emits a 1-byte
// identity sentinel {0} or a 65-byte tagged uncompressed point (0x04 for
// P-256, SEC1-compatible; 0x05 for ristretto255), chosen so parsing never
// pays a square root on the hot path. Compress emits the short canonical
// form (33 bytes SEC1 compressed for P-256, 32 bytes sign-bit-packed
// Edwards y for ristretto255) used for pseudonym map keys and persisted
// public keys. Decode accepts every form and infers which it is from the
// length and tag.
//
// All kernels are variable-time. This repository reproduces a research
// system; the scalars being multiplied (blinding exponents, ephemeral
// secrets) are per-epoch or per-report values processed in bulk on trusted
// infrastructure, and the big.Int arithmetic this package replaces was
// variable-time too.
package group

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// Scalar is an opaque scalar: 32 bytes, big-endian, reduced into the
// group's scalar-field range.
type Scalar []byte

// ScalarSize is the byte length of scalars for every backend.
const ScalarSize = 32

// WireSize is the byte length of a non-identity wire (uncompressed) point
// encoding for every backend, including the 1-byte tag.
const WireSize = 65

const (
	tagP256      = 0x04 // SEC1 uncompressed
	tagRistretto = 0x05
)

// Element is a group element. The zero value is the identity of either
// backend. Elements are created by a Group and must only be combined with
// elements of the same Group.
type Element struct {
	ed *edPoint
	pj *p256Point
}

// Table is a precomputed fixed-point multiplication table.
type Table interface {
	// Mul returns k*P for the fixed point P. The result may be in
	// projective form; batch callers should Normalize slices of results.
	Mul(k Scalar) Element
}

// Group is a prime-order group with batch-oriented kernels.
type Group interface {
	// Name is the registry name ("p256" or "ristretto255").
	Name() string
	// Order returns the group order (a fresh copy may not be assumed;
	// callers must not mutate it).
	Order() *big.Int
	// RandomScalar samples a uniform non-zero scalar by rejection
	// sampling (p256) or wide reduction (ristretto255); both consume a
	// deterministic number of rng bytes per attempt.
	RandomScalar(rng io.Reader) (Scalar, error)
	// Identity returns the neutral element.
	Identity() Element
	// Generator returns the standard base point.
	Generator() Element
	// BaseMul returns k*G via the precomputed base table.
	BaseMul(k Scalar) Element
	// Mul returns k*P for a variable point.
	Mul(p Element, k Scalar) Element
	// MulBatch sets dst[i] = k*ps[i] for a scalar fixed across the batch,
	// recoding the scalar once per slice. dst and ps may alias. Results
	// are projective; call Normalize before encoding.
	MulBatch(dst, ps []Element, k Scalar)
	// Precompute builds a comb table for a point fixed across batches.
	Precompute(p Element) Table
	// Add returns p + q.
	Add(p, q Element) Element
	// Sub returns p - q.
	Sub(p, q Element) Element
	// Neg returns -p.
	Neg(p Element) Element
	// Equal reports p == q (projective-aware).
	Equal(p, q Element) bool
	// IsIdentity reports whether p is the neutral element.
	IsIdentity(p Element) bool
	// HashToElement maps data to a group element (try-and-increment for
	// p256, ristretto Elligator for ristretto255).
	HashToElement(data []byte) Element
	// Normalize converts a slice of elements to affine form with one
	// shared field inversion.
	Normalize(ps []Element)
	// Encode returns the wire encoding: {0} for identity, else 65 bytes.
	Encode(p Element) []byte
	// Compress returns the short canonical encoding used as a map key:
	// {0} for identity, 33 bytes (p256) or 32 bytes (ristretto255).
	Compress(p Element) []byte
	// Decode parses any encoding this group produces (wire or
	// compressed) and validates group membership.
	Decode(b []byte) (Element, error)
	// PrepareDH turns a private scalar into the form MulDH expects
	// (folds in 8^-1 on ristretto255 so cofactor clearing cancels).
	PrepareDH(k Scalar) Scalar
	// MulDH computes the Diffie-Hellman product of an untrusted decoded
	// point and a prepared scalar, clearing the cofactor on backends
	// that have one.
	MulDH(p Element, k Scalar) Element
	// SharedBytes derives the 32-byte KDF input from a DH result: the
	// affine x coordinate for p256 (crypto/ecdh-compatible), the
	// compressed encoding for ristretto255.
	SharedBytes(p Element) []byte
}

var (
	// P256 is the NIST P-256 backend, byte-compatible with the
	// crypto/elliptic + crypto/ecdh paths it replaced.
	P256 Group = p256Group{}
	// Ristretto255 is the edwards25519 prime-order-subgroup backend.
	Ristretto255 Group = edGroup{}
)

// Default returns the default backend for new deployments.
func Default() Group { return Ristretto255 }

// ByName resolves a registry name.
func ByName(name string) (Group, error) {
	switch name {
	case "p256", "P256", "P-256":
		return P256, nil
	case "ristretto255", "ristretto":
		return Ristretto255, nil
	case "":
		return Default(), nil
	}
	return nil, fmt.Errorf("group: unknown group %q", name)
}

// Infer guesses the backend from an encoded element. The 1-byte identity
// sentinel is backend-agnostic and resolves to the default group.
func Infer(b []byte) (Group, error) {
	switch {
	case len(b) == 1 && b[0] == 0:
		return Default(), nil
	case len(b) == 33 && (b[0] == 0x02 || b[0] == 0x03):
		return P256, nil
	case len(b) == WireSize && b[0] == tagP256:
		return P256, nil
	case len(b) == 32:
		return Ristretto255, nil
	case len(b) == WireSize && b[0] == tagRistretto:
		return Ristretto255, nil
	}
	return nil, errors.New("group: unrecognized element encoding")
}

// fillScalar validates and fixes the width of a scalar.
func fillScalar(k Scalar) (*[32]byte, error) {
	var out [32]byte
	if len(k) > 32 {
		return nil, errors.New("group: scalar too long")
	}
	copy(out[32-len(k):], k)
	return &out, nil
}

// mustScalar panics on malformed scalars; used on paths where the scalar
// came from this package (RandomScalar, PrepareDH) or a validated key.
func mustScalar(k Scalar) *[32]byte {
	s, err := fillScalar(k)
	if err != nil {
		panic(err)
	}
	return s
}

// ScalarFromBig converts a big.Int (already reduced mod the group order)
// to a Scalar.
func ScalarFromBig(v *big.Int) Scalar {
	out := make(Scalar, 32)
	v.FillBytes(out)
	return out
}

// ScalarToBig converts a Scalar to a big.Int.
func ScalarToBig(k Scalar) *big.Int { return new(big.Int).SetBytes(k) }

// identityEncoding is the shared 1-byte identity sentinel.
var identityEncoding = []byte{0}

// edBaseComb lazily builds the ristretto base-point comb table (width 8:
// 32 positions, one-time cost amortized over the process lifetime). P-256
// base multiplication delegates to crypto/elliptic's assembly table, which
// a portable comb cannot beat.
var (
	edBaseTableOnce sync.Once
	edBaseTable     *edCombTable
)

func edBaseComb() *edCombTable {
	edBaseTableOnce.Do(func() {
		b := edBase
		edBaseTable = buildEdComb(&b, 8)
	})
	return edBaseTable
}
