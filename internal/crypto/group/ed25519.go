// Edwards25519 point arithmetic for the ristretto255 backend: extended
// (X:Y:Z:T) coordinates so that additions and doublings need no per-op field
// inversion, Niels-form precomputation for the fixed-point comb tables, a
// width-5 wNAF kernel for variable-point multiplication, and batch affine
// normalization via the Montgomery trick — the edwards counterpart of the
// P-256 Jacobian kernels in p256.go.
//
// Group structure: all long-lived elements live in the prime-order subgroup
// (order l). HashToElement clears the cofactor, honest keys and ciphertexts
// are subgroup multiples by construction, and the DH path multiplies
// untrusted decoded points by 8 (compensated by 8^-1 folded into the private
// scalar), so a small-subgroup component contributed by a malicious encoder
// can never probe the private key. Within the subgroup the affine (x, y)
// pair is unique per element, which is what makes the compressed-y encoding
// canonical for pseudonym map keys.

package group

import (
	"crypto/sha512"
	"math/big"
	"math/bits"
)

// edPoint is a point in extended coordinates: x = X/Z, y = Y/Z, T·Z = X·Y.
type edPoint struct {
	x, y, z, t fe25519
}

// affineNiels is the precomputed form used by comb-table entries (z == 1).
type affineNiels struct {
	yPlusX, yMinusX, xy2d fe25519
}

// projNiels is the precomputed form used by the wNAF table (projective).
type projNiels struct {
	yPlusX, yMinusX, z, t2d fe25519
}

// --- curve constants, derived at init from d = -121665/121666 ---

var (
	edD    fe25519 // d
	edD2   fe25519 // 2d
	edBase edPoint // generator B (y = 4/5, x positive)

	// ristretto Elligator map constants
	edOneMinusDSq  fe25519 // 1 - d^2
	edDMinusOneSq  fe25519 // (d - 1)^2
	edSqrtAdMinus1 fe25519 // sqrt(-d - 1)
)

func init() {
	num := big.NewInt(-121665)
	den := big.NewInt(121666)
	dBig := new(big.Int).ModInverse(den, p25519)
	dBig.Mul(dBig, num)
	dBig.Mod(dBig, p25519)
	edD.fromBig(dBig)
	edD2.Add(&edD, &edD)

	one := new(big.Int).SetInt64(1)
	edOneMinusDSqBig := new(big.Int).Mul(dBig, dBig)
	edOneMinusDSqBig.Sub(one, edOneMinusDSqBig)
	edOneMinusDSq.fromBig(edOneMinusDSqBig)

	dm1 := new(big.Int).Sub(dBig, one)
	dm1.Mul(dm1, dm1)
	edDMinusOneSq.fromBig(dm1)

	// sqrt(-d-1): -d-1 is a square mod p (the ristretto255 spec constant
	// SQRT_AD_MINUS_ONE exists); assert that at init.
	var radicand, oneFe fe25519
	oneFe.One()
	radicand.Neg(&edD)
	radicand.Sub(&radicand, &oneFe)
	if !edSqrtAdMinus1.SqrtRatio(&radicand, &oneFe) {
		panic("group: -d-1 is not a square")
	}

	// generator: y = 4/5, x = +sqrt((y^2-1)/(d*y^2+1))
	yBig := new(big.Int).ModInverse(big.NewInt(5), p25519)
	yBig.Mul(yBig, big.NewInt(4))
	yBig.Mod(yBig, p25519)
	var y fe25519
	y.fromBig(yBig)
	p, ok := edFromY(&y, false)
	if !ok {
		panic("group: generator y is not on the curve")
	}
	edBase = *p
}

// edFromY recovers the point with the given y coordinate and sign of x
// (xNeg true selects the negative root). Returns false if y is not on the
// curve.
func edFromY(y *fe25519, xNeg bool) (*edPoint, bool) {
	var one, u, v, x fe25519
	one.One()
	u.Square(y)
	v.Mul(&u, &edD)
	u.Sub(&u, &one) // y^2 - 1
	v.Add(&v, &one) // d*y^2 + 1
	if !x.SqrtRatio(&u, &v) {
		return nil, false
	}
	if x.IsZero() && xNeg {
		return nil, false // -0 is not a valid sign choice
	}
	x.CondNeg(xNeg)
	p := &edPoint{x: x, y: *y}
	p.z.One()
	p.t.Mul(&x, y)
	return p, true
}

// identity sets p to the neutral element (0, 1).
func (p *edPoint) identity() {
	p.x.Zero()
	p.y.One()
	p.z.One()
	p.t.Zero()
}

func (p *edPoint) isIdentity() bool {
	// (0 : Z : Z : 0) for any Z: x == 0 and y == z.
	return p.x.IsZero() && p.y.Equal(&p.z)
}

// equal compares two projective points: x1*z2 == x2*z1 and y1*z2 == y2*z1.
func (p *edPoint) equal(q *edPoint) bool {
	var a, b fe25519
	a.Mul(&p.x, &q.z)
	b.Mul(&q.x, &p.z)
	if !a.Equal(&b) {
		return false
	}
	a.Mul(&p.y, &q.z)
	b.Mul(&q.y, &p.z)
	return a.Equal(&b)
}

// neg sets p = -q.
func (p *edPoint) neg(q *edPoint) {
	p.x.Neg(&q.x)
	p.y.Set(&q.y)
	p.z.Set(&q.z)
	p.t.Neg(&q.t)
}

// double sets p = 2q (dbl-2008-hwcd, 4S+4M, 3M when T is not needed).
// The intermediate sums use the lazy (carry-free) field ops: one lazy
// level stays within Mul/Square's input headroom (see addLazy), and this
// runs once per scalar bit in every wNAF ladder, so the six saved carry
// passes are the single hottest line of the batch kernels.
func (p *edPoint) double(q *edPoint, needT bool) {
	var a, b, c, e, f, g, h, xy fe25519
	a.Square(&q.x)
	b.Square(&q.y)
	c.Square(&q.z)
	c.addLazy(&c, &c)
	h.addLazy(&a, &b)
	xy.addLazy(&q.x, &q.y)
	xy.Square(&xy)
	e.subLazy(&h, &xy)
	g.subLazy(&a, &b)
	f.addLazy(&c, &g)
	p.x.Mul(&e, &f)
	p.y.Mul(&g, &h)
	p.z.Mul(&f, &g)
	if needT {
		p.t.Mul(&e, &h)
	}
}

// add sets p = q + r (extended, add-2008-hwcd-3 with 2d, 9M).
func (p *edPoint) add(q, r *edPoint) {
	var a, b, c, d, e, f, g, h, t1, t2 fe25519
	t1.Sub(&q.y, &q.x)
	t2.Sub(&r.y, &r.x)
	a.Mul(&t1, &t2)
	t1.Add(&q.y, &q.x)
	t2.Add(&r.y, &r.x)
	b.Mul(&t1, &t2)
	c.Mul(&q.t, &r.t)
	c.Mul(&c, &edD2)
	d.Mul(&q.z, &r.z)
	d.Add(&d, &d)
	e.Sub(&b, &a)
	f.Sub(&d, &c)
	g.Add(&d, &c)
	h.Add(&b, &a)
	p.x.Mul(&e, &f)
	p.y.Mul(&g, &h)
	p.z.Mul(&f, &g)
	p.t.Mul(&e, &h)
}

// addAffineNiels sets p = q + n where n is a z==1 precomputed entry (7M).
// sub negates the entry.
func (p *edPoint) addAffineNiels(q *edPoint, n *affineNiels, sub bool) {
	var pp, mm, tt, z2, e, f, g, h, t1, t2 fe25519
	t1.addLazy(&q.y, &q.x)
	t2.subLazy(&q.y, &q.x)
	tt.Mul(&q.t, &n.xy2d)
	if sub {
		pp.Mul(&t1, &n.yMinusX)
		mm.Mul(&t2, &n.yPlusX)
	} else {
		pp.Mul(&t1, &n.yPlusX)
		mm.Mul(&t2, &n.yMinusX)
	}
	z2.addLazy(&q.z, &q.z)
	e.subLazy(&pp, &mm)
	// subtracting the entry flips tt's sign; fold it into f and g instead
	// of negating (tt stays carried, as subLazy requires)
	if sub {
		f.addLazy(&z2, &tt)
		g.subLazy(&z2, &tt)
	} else {
		f.subLazy(&z2, &tt)
		g.addLazy(&z2, &tt)
	}
	h.addLazy(&pp, &mm)
	p.x.Mul(&e, &f)
	p.y.Mul(&g, &h)
	p.z.Mul(&f, &g)
	p.t.Mul(&e, &h)
}

// addProjNiels sets p = q + n for a projective Niels entry (8M).
func (p *edPoint) addProjNiels(q *edPoint, n *projNiels, sub bool) {
	var pp, mm, tt, zz, e, f, g, h, t1, t2 fe25519
	t1.addLazy(&q.y, &q.x)
	t2.subLazy(&q.y, &q.x)
	tt.Mul(&q.t, &n.t2d)
	if sub {
		pp.Mul(&t1, &n.yMinusX)
		mm.Mul(&t2, &n.yPlusX)
	} else {
		pp.Mul(&t1, &n.yPlusX)
		mm.Mul(&t2, &n.yMinusX)
	}
	zz.Mul(&q.z, &n.z)
	zz.addLazy(&zz, &zz)
	e.subLazy(&pp, &mm)
	// fold the entry's sign flip into f and g (see addAffineNiels)
	if sub {
		f.addLazy(&zz, &tt)
		g.subLazy(&zz, &tt)
	} else {
		f.subLazy(&zz, &tt)
		g.addLazy(&zz, &tt)
	}
	h.addLazy(&pp, &mm)
	p.x.Mul(&e, &f)
	p.y.Mul(&g, &h)
	p.z.Mul(&f, &g)
	p.t.Mul(&e, &h)
}

// toProjNiels converts p to its projective Niels form. The y±x entries are
// stored lazily (one uncarried level); their only consumers are the Muls in
// addProjNiels, which accept that headroom.
func (p *edPoint) toProjNiels(n *projNiels) {
	n.yPlusX.addLazy(&p.y, &p.x)
	n.yMinusX.subLazy(&p.y, &p.x)
	n.z.Set(&p.z)
	n.t2d.Mul(&p.t, &edD2)
}

// toAffineNiels converts a normalized (z == 1) point to affine Niels form.
// Entries are lazy like toProjNiels's.
func (p *edPoint) toAffineNiels(n *affineNiels) {
	n.yPlusX.addLazy(&p.y, &p.x)
	n.yMinusX.subLazy(&p.y, &p.x)
	n.xy2d.Mul(&p.x, &p.y)
	n.xy2d.Mul(&n.xy2d, &edD2)
}

// normalizeEd scales each point to z == 1 with a single shared field
// inversion (Montgomery trick). Identity slots (z may be any value) are
// normalized too; z is never zero for a valid edwards point.
func normalizeEd(ps []*edPoint) {
	if len(ps) == 0 {
		return
	}
	zs := make([]*fe25519, len(ps))
	for i, p := range ps {
		zs[i] = &p.z
	}
	batchInvert25519(zs)
	for _, p := range ps {
		// p.z now holds 1/z
		p.x.Mul(&p.x, &p.z)
		p.y.Mul(&p.y, &p.z)
		p.z.One()
		p.t.Mul(&p.x, &p.y)
	}
}

// clearCofactor sets p = 8q (three doublings), projecting onto the
// prime-order subgroup.
func (p *edPoint) clearCofactor(q *edPoint) {
	p.double(q, false)
	p.double(p, false)
	p.double(p, true)
}

// --- scalar multiplication kernels ---

// wnafDigits recodes a scalar (32-byte big-endian, < l) into width-5 NAF
// digits, least significant first. Digits are odd, in [-15, 15], and at
// most one in five is non-zero. Returns the number of digits used.
func wnafDigits(k []byte, digits *[258]int8) int {
	// load into 4 little-endian limbs
	var limbs [5]uint64 // extra limb absorbs the borrow-carry headroom
	for i := 0; i < 32; i++ {
		limbs[i/8] |= uint64(k[31-i]) << ((i % 8) * 8)
	}
	n := 0
	for limbs != ([5]uint64{}) {
		if limbs[0]&1 == 1 {
			d := int8(limbs[0] & 31)
			if d > 16 {
				d -= 32
			}
			if d > 0 {
				var borrow uint64
				limbs[0], borrow = bits.Sub64(limbs[0], uint64(d), 0)
				for i := 1; i < 5; i++ {
					limbs[i], borrow = bits.Sub64(limbs[i], 0, borrow)
				}
			} else {
				var carry uint64
				limbs[0], carry = bits.Add64(limbs[0], uint64(-d), 0)
				for i := 1; i < 5; i++ {
					limbs[i], carry = bits.Add64(limbs[i], 0, carry)
				}
			}
			digits[n] = d
		} else {
			digits[n] = 0
		}
		// shift right by one
		for i := 0; i < 4; i++ {
			limbs[i] = limbs[i]>>1 | limbs[i+1]<<63
		}
		limbs[4] >>= 1
		n++
	}
	return n
}

// edScalarMulWNAF sets p = k*q using the width-5 wNAF kernel: a per-point
// table of 8 projective-Niels odd multiples, then one double per scalar bit
// with ~one add per five bits. The digits slice comes from wnafDigits so
// batch callers with a fixed scalar (the Blinder's alpha, the Decrypter's
// x) recode once per slice instead of once per point.
func edScalarMulWNAF(p *edPoint, digits []int8, q *edPoint) {
	if len(digits) == 0 {
		p.identity()
		return
	}
	// table[i] = (2i+1)*q in projective Niels form
	var table [8]projNiels
	var q2, acc edPoint
	var q2n projNiels
	q.toProjNiels(&table[0])
	q2.double(q, true)
	q2.toProjNiels(&q2n)
	tmp := *q
	for i := 1; i < 8; i++ {
		tmp.addProjNiels(&tmp, &q2n, false)
		tmp.toProjNiels(&table[i])
	}
	acc.identity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc.double(&acc, digits[i] != 0 || i == 0)
		if d := digits[i]; d > 0 {
			acc.addProjNiels(&acc, &table[(d-1)/2], false)
		} else if d < 0 {
			acc.addProjNiels(&acc, &table[(-d-1)/2], true)
		}
	}
	*p = acc
}

// --- fixed-point comb tables ---

// edCombTable is a signed-digit comb table for a fixed point: entry [j][v-1]
// holds (v * 2^(w*j)) * P in affine Niels form, so a full multiplication is
// one table add per digit and no doublings at all. Entries are batch-
// normalized at build time with one shared inversion.
type edCombTable struct {
	w       uint
	entries [][]affineNiels // [positions][2^(w-1)]
}

// buildEdComb precomputes the comb table for p with window width w.
func buildEdComb(p *edPoint, w uint) *edCombTable {
	positions := (256 + int(w) - 1) / int(w)
	half := 1 << (w - 1)
	// build all entries in extended coordinates first
	ext := make([][]edPoint, positions)
	base := *p
	for j := 0; j < positions; j++ {
		ext[j] = make([]edPoint, half)
		ext[j][0] = base
		for v := 1; v < half; v++ {
			ext[j][v].add(&ext[j][v-1], &base)
		}
		if j < positions-1 {
			for i := uint(0); i < w; i++ {
				base.double(&base, i == w-1)
			}
		}
	}
	// one shared inversion for every entry
	flat := make([]*edPoint, 0, positions*half)
	for j := range ext {
		for v := range ext[j] {
			flat = append(flat, &ext[j][v])
		}
	}
	normalizeEd(flat)
	t := &edCombTable{w: w, entries: make([][]affineNiels, positions)}
	for j := range ext {
		t.entries[j] = make([]affineNiels, half)
		for v := range ext[j] {
			ext[j][v].toAffineNiels(&t.entries[j][v])
		}
	}
	return t
}

// combDigits recodes a scalar (32-byte big-endian) into signed radix-2^w
// digits, least significant position first.
func combDigits(k []byte, w uint, out []int16) {
	// little-endian limbs
	var limbs [5]uint64
	for i := 0; i < 32; i++ {
		limbs[i/8] |= uint64(k[31-i]) << ((i % 8) * 8)
	}
	half := int16(1) << (w - 1)
	full := int16(1) << w
	carry := int16(0)
	for j := range out {
		bit := uint(j) * w
		limb := bit / 64
		off := bit % 64
		var raw uint64
		if limb < 5 {
			raw = limbs[limb] >> off
			if off != 0 && limb+1 < 5 {
				raw |= limbs[limb+1] << (64 - off)
			}
		}
		d := int16(raw&uint64(full-1)) + carry
		if d >= half {
			d -= full
			carry = 1
		} else {
			carry = 0
		}
		out[j] = d
	}
	if carry != 0 {
		panic("group: comb recoding overflow")
	}
}

// mulComb sets p = k*P for the table's fixed point P: one affine-Niels add
// per non-zero digit, no doublings.
func (t *edCombTable) mulComb(p *edPoint, k []byte) {
	digits := make([]int16, len(t.entries))
	combDigits(k, t.w, digits)
	var acc edPoint
	acc.identity()
	for j, d := range digits {
		if d > 0 {
			acc.addAffineNiels(&acc, &t.entries[j][d-1], false)
		} else if d < 0 {
			acc.addAffineNiels(&acc, &t.entries[j][-d-1], true)
		}
	}
	*p = acc
}

// --- scalar field (mod l) ---

// edOrder is the group order l = 2^252 + 27742317777372353535851937790883648493.
var edOrder = func() *big.Int {
	l := new(big.Int).Lsh(big.NewInt(1), 252)
	delta, ok := new(big.Int).SetString("27742317777372353535851937790883648493", 10)
	if !ok {
		panic("group: bad order constant")
	}
	return l.Add(l, delta)
}()

// edInv8 is 8^-1 mod l, folded into private DH scalars so untrusted points
// can be cofactor-cleared without changing honest shared secrets.
var edInv8 = new(big.Int).ModInverse(big.NewInt(8), edOrder)

// --- hash to group (ristretto Elligator map) ---

// edElligator maps a field element to a curve point via the ristretto255
// one-way MAP. The output may carry a torsion component; callers clear the
// cofactor.
func edElligator(r0 *fe25519) *edPoint {
	var one, r, u, v, s, sPrime, c, n, w0, w1, w2, w3, t1, t2 fe25519
	one.One()
	r.Square(r0)
	r.Mul(&r, sqrtM1_25519) // r = sqrt(-1)*r0^2
	u.Add(&r, &one)
	u.Mul(&u, &edOneMinusDSq) // u = (r+1)*(1-d^2)
	t1.Mul(&r, &edD)
	t1.Add(&t1, &one)
	t1.Neg(&t1) // -(1+r*d)
	t2.Add(&r, &edD)
	v.Mul(&t1, &t2) // v = -(1+r*d)*(r+d)

	wasSquare := s.SqrtRatio(&u, &v)
	sPrime.Mul(&s, r0)
	sPrime.Abs(&sPrime)
	sPrime.Neg(&sPrime) // s' = -|s*r0|
	if wasSquare {
		c.Neg(&one) // c = -1
	} else {
		s.Set(&sPrime)
		c.Set(&r)
	}
	t1.Sub(&r, &one)
	n.Mul(&c, &t1)
	n.Mul(&n, &edDMinusOneSq)
	n.Sub(&n, &v) // N = c*(r-1)*(d-1)^2 - v

	var s2 fe25519
	s2.Square(&s)
	w0.Mul(&s, &v)
	w0.Add(&w0, &w0) // 2sv
	w1.Mul(&n, &edSqrtAdMinus1)
	w2.Sub(&one, &s2)
	w3.Add(&one, &s2)

	p := &edPoint{}
	p.x.Mul(&w0, &w3)
	p.y.Mul(&w2, &w1)
	p.z.Mul(&w1, &w3)
	p.t.Mul(&w0, &w2)
	return p
}

// edHashToPoint hashes arbitrary data into the prime-order subgroup:
// SHA-512 with a domain label, Elligator map, cofactor clearing.
func edHashToPoint(data []byte) *edPoint {
	h := sha512.New()
	h.Write([]byte("prochlo-h2c-ristretto255"))
	h.Write(data)
	sum := h.Sum(nil)
	var r0 fe25519
	sum[31] &= 0x7f
	r0.SetBytes(sum[:32])
	var p edPoint
	p.clearCofactor(edElligator(&r0))
	return &p
}
