package group

import (
	"math/big"
	"math/rand"
	"testing"
)

func randP256Point(r *rand.Rand) (x, y *big.Int) {
	k := make([]byte, 32)
	r.Read(k)
	return p256Curve.ScalarBaseMult(k)
}

func TestFeP256Arithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	p := p256P
	randVal := func() *big.Int {
		b := make([]byte, 32)
		r.Read(b)
		v := new(big.Int).SetBytes(b)
		return v.Mod(v, p)
	}
	vals := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Rsh(p, 1),
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, randVal())
	}
	check := func(name string, got *fep256, want *big.Int) {
		t.Helper()
		w := new(big.Int).Mod(want, p)
		if g := got.toBig(); g.Cmp(w) != 0 {
			t.Fatalf("%s: got %v want %v", name, g, w)
		}
	}
	for i, av := range vals {
		bv := vals[(i*11+5)%len(vals)]
		var a, b, out fep256
		a.fromBig(av)
		b.fromBig(bv)
		// domain round trip
		if a.toBig().Cmp(av) != 0 {
			t.Fatalf("round trip %v", av)
		}
		out.montMul(&a, &b)
		check("mul", &out, new(big.Int).Mul(av, bv))
		out.Square(&a)
		check("square", &out, new(big.Int).Mul(av, av))
		out.Add(&a, &b)
		check("add", &out, new(big.Int).Add(av, bv))
		out.Sub(&a, &b)
		check("sub", &out, new(big.Int).Sub(av, bv))
		out.Neg(&a)
		check("neg", &out, new(big.Int).Neg(av))
		if av.Sign() != 0 {
			out.Invert(&a)
			check("invert", &out, new(big.Int).ModInverse(av, p))
		}
	}
}

func TestBatchInvertP256(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 3, 33} {
		vs := make([]*fep256, n)
		want := make([]*big.Int, n)
		for i := range vs {
			vs[i] = new(fep256)
			if i%4 == 2 {
				want[i] = big.NewInt(0)
				continue
			}
			b := make([]byte, 32)
			r.Read(b)
			v := new(big.Int).SetBytes(b)
			v.Mod(v, p256P)
			if v.Sign() == 0 {
				v.SetInt64(1)
			}
			vs[i].fromBig(v)
			want[i] = new(big.Int).ModInverse(v, p256P)
		}
		batchInvertP256(vs)
		for i := range vs {
			if got := vs[i].toBig(); got.Cmp(want[i]) != 0 {
				t.Fatalf("n=%d entry %d: got %v want %v", n, i, got, want[i])
			}
		}
	}
}

// TestP256JacobianVsElliptic is the cross-validation required by the issue:
// the Jacobian kernels must agree with crypto/elliptic on random points and
// the edge cases (infinity, P == Q, P == -Q).
func TestP256JacobianVsElliptic(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	curve := p256Curve
	checkPoint := func(name string, p *p256Point, wx, wy *big.Int) {
		t.Helper()
		gx, gy := p.affineBig()
		if gx.Cmp(wx) != 0 || gy.Cmp(wy) != 0 {
			t.Fatalf("%s: got (%v, %v) want (%v, %v)", name, gx, gy, wx, wy)
		}
	}
	for i := 0; i < 25; i++ {
		x1, y1 := randP256Point(r)
		x2, y2 := randP256Point(r)
		var p, q, out p256Point
		p.fromAffineBig(x1, y1)
		q.fromAffineBig(x2, y2)

		wx, wy := curve.Add(x1, y1, x2, y2)
		out.add(&p, &q)
		checkPoint("add", &out, wx, wy)

		wx, wy = curve.Double(x1, y1)
		out.double(&p)
		checkPoint("double", &out, wx, wy)

		// P == Q through the generic add path must hit the doubling branch
		out.add(&p, &p)
		checkPoint("add(P,P)", &out, wx, wy)

		// P == -Q must produce infinity
		var negQ p256Point
		negY := new(big.Int).Sub(p256P, y1)
		negQ.fromAffineBig(x1, negY)
		out.add(&p, &negQ)
		if !out.isInfinity() {
			t.Fatal("P + (-P) != infinity")
		}

		// infinity handling on both sides
		var inf p256Point
		out.add(&p, &inf)
		checkPoint("P+inf", &out, x1, y1)
		out.add(&inf, &p)
		checkPoint("inf+P", &out, x1, y1)
		out.double(&inf)
		if !out.isInfinity() {
			t.Fatal("2*inf != inf")
		}

		// mixed (affine) add
		var aff p256Affine
		var qn p256Point
		qn.fromAffineBig(x2, y2)
		aff.x, aff.y = qn.x, qn.y
		wx, wy = curve.Add(x1, y1, x2, y2)
		out.addAffine(&p, &aff, false)
		checkPoint("addAffine", &out, wx, wy)
		wx, wy = curve.Add(x1, y1, x2, new(big.Int).Sub(p256P, y2))
		out.addAffine(&p, &aff, true)
		checkPoint("addAffine sub", &out, wx, wy)
	}
}

func TestP256NormalizeBatch(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	pts := make([]*p256Point, 9)
	wants := make([][2]*big.Int, len(pts))
	for i := range pts {
		pts[i] = new(p256Point)
		if i == 4 {
			continue // leave one infinity
		}
		x, y := randP256Point(r)
		x2, y2 := randP256Point(r)
		var q p256Point
		pts[i].fromAffineBig(x, y)
		q.fromAffineBig(x2, y2)
		pts[i].add(pts[i], &q) // give it a non-trivial z
		wx, wy := p256Curve.Add(x, y, x2, y2)
		wants[i] = [2]*big.Int{wx, wy}
	}
	normalizeP256(pts)
	for i, p := range pts {
		if i == 4 {
			if !p.isInfinity() {
				t.Fatal("infinity entry disturbed")
			}
			continue
		}
		if p.z != p256MontID {
			t.Fatalf("entry %d not normalized", i)
		}
		gx, gy := p.affineBig()
		if gx.Cmp(wants[i][0]) != 0 || gy.Cmp(wants[i][1]) != 0 {
			t.Fatalf("entry %d wrong after normalization", i)
		}
	}
}

func TestP256CombVsScalarMult(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	px, py := randP256Point(r)
	for _, w := range []uint{6, 7} {
		table := buildP256Comb(px, py, w)
		for i := 0; i < 8; i++ {
			k := make([]byte, 32)
			r.Read(k)
			if i == 0 {
				for j := range k {
					k[j] = 0
				}
			}
			kInt := new(big.Int).SetBytes(k)
			kInt.Mod(kInt, p256N)
			var kb [32]byte
			kInt.FillBytes(kb[:])
			var got p256Point
			table.mulComb(&got, kb[:])
			if kInt.Sign() == 0 {
				if !got.isInfinity() {
					t.Fatal("0*P != infinity")
				}
				continue
			}
			wx, wy := p256Curve.ScalarMult(px, py, kb[:])
			gx, gy := got.affineBig()
			if gx.Cmp(wx) != 0 || gy.Cmp(wy) != 0 {
				t.Fatalf("comb w=%d mismatch", w)
			}
		}
	}
}

func BenchmarkP256FieldMul(b *testing.B) {
	var x, y fep256
	x.fromBig(big.NewInt(0xdeadbeef))
	y.fromBig(big.NewInt(0xcafebabe))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.montMul(&x, &y)
	}
}

func BenchmarkP256CombMul(b *testing.B) {
	r := rand.New(rand.NewSource(25))
	px, py := randP256Point(r)
	table := buildP256Comb(px, py, 6)
	k := make([]byte, 32)
	r.Read(k)
	b.ReportAllocs()
	b.ResetTimer()
	var out p256Point
	for i := 0; i < b.N; i++ {
		table.mulComb(&out, k)
	}
}

func BenchmarkP256EllipticScalarMult(b *testing.B) {
	r := rand.New(rand.NewSource(26))
	px, py := randP256Point(r)
	k := make([]byte, 32)
	r.Read(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p256Curve.ScalarMult(px, py, k)
	}
}

func BenchmarkEdCombMul(b *testing.B) {
	r := rand.New(rand.NewSource(27))
	var seed [32]byte
	r.Read(seed[:])
	p := edHashToPoint(seed[:])
	normalizeEd([]*edPoint{p})
	table := buildEdComb(p, 6)
	k := make([]byte, 32)
	r.Read(k)
	k[0] &= 0x0f
	b.ReportAllocs()
	b.ResetTimer()
	var out edPoint
	for i := 0; i < b.N; i++ {
		table.mulComb(&out, k)
	}
}

func BenchmarkEdWNAFMul(b *testing.B) {
	r := rand.New(rand.NewSource(28))
	var seed [32]byte
	r.Read(seed[:])
	p := edHashToPoint(seed[:])
	k := make([]byte, 32)
	r.Read(k)
	k[0] &= 0x0f
	var digits [258]int8
	n := wnafDigits(k, &digits)
	b.ReportAllocs()
	b.ResetTimer()
	var out edPoint
	for i := 0; i < b.N; i++ {
		edScalarMulWNAF(&out, digits[:n], p)
	}
}
