// Radix-51 field arithmetic over GF(2^255 - 19), the base field of the
// ristretto255 backend. Five 51-bit limbs in uint64s leave headroom for lazy
// carries, and every public operation returns fully carried limbs (< 2^52),
// which keeps the bounds analysis trivial at a cost of a few nanoseconds per
// op. The multiplication kernel is the batch hot path: one Jacobian-style
// point operation is 7-9 of these, and an epoch-sized slice runs millions.
//
// Correctness is pinned two ways: TestFe25519AgainstBigInt cross-validates
// every operation against math/big on random and boundary inputs, and the
// exponentiation-based inversion and square roots are checked against their
// big.Int counterparts.

package group

import (
	"math/big"
	"math/bits"
)

// fe25519 is a field element of GF(2^255-19): v = Σ limb[i]·2^(51i).
type fe25519 [5]uint64

const mask51 = (1 << 51) - 1

// p25519 is 2^255 - 19 as a big.Int, for the slow reference paths
// (inversion, constant generation).
var p25519 = func() *big.Int {
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	return p.Sub(p, big.NewInt(19))
}()

// carry fully propagates carries, leaving every limb below 2^51 + epsilon
// (strictly: limb 0 may briefly hold up to 2^51 + 19·2^13; one more pass
// bounds all limbs under 2^52, which is the invariant ops rely on).
func (v *fe25519) carry() {
	c0 := v[0] >> 51
	c1 := v[1] >> 51
	c2 := v[2] >> 51
	c3 := v[3] >> 51
	c4 := v[4] >> 51
	v[0] = v[0]&mask51 + c4*19
	v[1] = v[1]&mask51 + c0
	v[2] = v[2]&mask51 + c1
	v[3] = v[3]&mask51 + c2
	v[4] = v[4]&mask51 + c3
}

// Zero sets v = 0.
func (v *fe25519) Zero() { *v = fe25519{} }

// One sets v = 1.
func (v *fe25519) One() { *v = fe25519{1, 0, 0, 0, 0} }

// Set sets v = a.
func (v *fe25519) Set(a *fe25519) { *v = *a }

// Add sets v = a + b.
func (v *fe25519) Add(a, b *fe25519) {
	v[0] = a[0] + b[0]
	v[1] = a[1] + b[1]
	v[2] = a[2] + b[2]
	v[3] = a[3] + b[3]
	v[4] = a[4] + b[4]
	v.carry()
}

// Sub sets v = a - b, adding 2p so limbs stay non-negative.
func (v *fe25519) Sub(a, b *fe25519) {
	v[0] = a[0] + (mask51+1)*2 - 38 - b[0]
	v[1] = a[1] + (mask51+1)*2 - 2 - b[1]
	v[2] = a[2] + (mask51+1)*2 - 2 - b[2]
	v[3] = a[3] + (mask51+1)*2 - 2 - b[3]
	v[4] = a[4] + (mask51+1)*2 - 2 - b[4]
	v.carry()
}

// Neg sets v = -a.
func (v *fe25519) Neg(a *fe25519) {
	var zero fe25519
	v.Sub(&zero, a)
}

// addLazy and subLazy are the carry-free variants of Add and Sub for the
// point-arithmetic hot paths. Skipping the carry pass is sound for one lazy
// level: with carried inputs (limbs < 2^51.01) a lazy add stays below
// 2^52.01 and a lazy sub below 2^52.6 (the 2p offset dominates), and one
// more add of such values stays below 2^53.1 — while Mul and Square accept
// limbs up to ~2^53.5. The binding constraint is Mul's limb-4 accumulator:
// five plain products of 2^53.5-limb inputs sum below 2^109.8, so its high
// word stays under 2^46 and the folded carry c4 under 2^59, which keeps
// c4*19 inside a uint64. Lazy subtrahends are NOT allowed: subLazy's 2p
// offset only covers carried (< 2^52-38) subtrahend limbs.
func (v *fe25519) addLazy(a, b *fe25519) {
	v[0] = a[0] + b[0]
	v[1] = a[1] + b[1]
	v[2] = a[2] + b[2]
	v[3] = a[3] + b[3]
	v[4] = a[4] + b[4]
}

// subLazy sets v = a - b without the carry pass; b must be fully carried.
func (v *fe25519) subLazy(a, b *fe25519) {
	v[0] = a[0] + (mask51+1)*2 - 38 - b[0]
	v[1] = a[1] + (mask51+1)*2 - 2 - b[1]
	v[2] = a[2] + (mask51+1)*2 - 2 - b[2]
	v[3] = a[3] + (mask51+1)*2 - 2 - b[3]
	v[4] = a[4] + (mask51+1)*2 - 2 - b[4]
}

// mul64 accumulation helper: returns (hi, lo) of a*b added into (h, l).
func addMul(h, l, a, b uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	var c uint64
	l, c = bits.Add64(l, lo, 0)
	h += hi + c
	return h, l
}

// Mul sets v = a * b.
func (v *fe25519) Mul(a, b *fe25519) {
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	b0, b1, b2, b3, b4 := b[0], b[1], b[2], b[3], b[4]
	a1_19, a2_19, a3_19, a4_19 := a1*19, a2*19, a3*19, a4*19

	h0, l0 := bits.Mul64(a0, b0)
	h0, l0 = addMul(h0, l0, a1_19, b4)
	h0, l0 = addMul(h0, l0, a2_19, b3)
	h0, l0 = addMul(h0, l0, a3_19, b2)
	h0, l0 = addMul(h0, l0, a4_19, b1)

	h1, l1 := bits.Mul64(a0, b1)
	h1, l1 = addMul(h1, l1, a1, b0)
	h1, l1 = addMul(h1, l1, a2_19, b4)
	h1, l1 = addMul(h1, l1, a3_19, b3)
	h1, l1 = addMul(h1, l1, a4_19, b2)

	h2, l2 := bits.Mul64(a0, b2)
	h2, l2 = addMul(h2, l2, a1, b1)
	h2, l2 = addMul(h2, l2, a2, b0)
	h2, l2 = addMul(h2, l2, a3_19, b4)
	h2, l2 = addMul(h2, l2, a4_19, b3)

	h3, l3 := bits.Mul64(a0, b3)
	h3, l3 = addMul(h3, l3, a1, b2)
	h3, l3 = addMul(h3, l3, a2, b1)
	h3, l3 = addMul(h3, l3, a3, b0)
	h3, l3 = addMul(h3, l3, a4_19, b4)

	h4, l4 := bits.Mul64(a0, b4)
	h4, l4 = addMul(h4, l4, a1, b3)
	h4, l4 = addMul(h4, l4, a2, b2)
	h4, l4 = addMul(h4, l4, a3, b1)
	h4, l4 = addMul(h4, l4, a4, b0)

	v.reduce128(h0, l0, h1, l1, h2, l2, h3, l3, h4, l4)
}

// Square sets v = a * a, saving the symmetric half of the products.
func (v *fe25519) Square(a *fe25519) {
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	a0_2, a1_2 := a0*2, a1*2
	a1_38, a2_38, a3_38 := a1*38, a2*38, a3*38
	a3_19, a4_19 := a3*19, a4*19

	h0, l0 := bits.Mul64(a0, a0)
	h0, l0 = addMul(h0, l0, a1_38, a4)
	h0, l0 = addMul(h0, l0, a2_38, a3)

	h1, l1 := bits.Mul64(a0_2, a1)
	h1, l1 = addMul(h1, l1, a2_38, a4)
	h1, l1 = addMul(h1, l1, a3_19, a3)

	h2, l2 := bits.Mul64(a0_2, a2)
	h2, l2 = addMul(h2, l2, a1, a1)
	h2, l2 = addMul(h2, l2, a3_38, a4)

	h3, l3 := bits.Mul64(a0_2, a3)
	h3, l3 = addMul(h3, l3, a1_2, a2)
	h3, l3 = addMul(h3, l3, a4_19, a4)

	h4, l4 := bits.Mul64(a0_2, a4)
	h4, l4 = addMul(h4, l4, a1_2, a3)
	h4, l4 = addMul(h4, l4, a2, a2)

	v.reduce128(h0, l0, h1, l1, h2, l2, h3, l3, h4, l4)
}

// reduce128 folds five 115-bit accumulator pairs back to 51-bit limbs.
func (v *fe25519) reduce128(h0, l0, h1, l1, h2, l2, h3, l3, h4, l4 uint64) {
	c0 := h0<<13 | l0>>51
	c1 := h1<<13 | l1>>51
	c2 := h2<<13 | l2>>51
	c3 := h3<<13 | l3>>51
	c4 := h4<<13 | l4>>51

	r0 := l0&mask51 + c4*19
	r1 := l1&mask51 + c0
	r2 := l2&mask51 + c1
	r3 := l3&mask51 + c2
	r4 := l4&mask51 + c3

	// one carry pass; r0 may exceed 2^51 after the 19-fold
	c := r0 >> 51
	r0 &= mask51
	r1 += c
	c = r1 >> 51
	r1 &= mask51
	r2 += c
	c = r2 >> 51
	r2 &= mask51
	r3 += c
	c = r3 >> 51
	r3 &= mask51
	r4 += c
	c = r4 >> 51
	r4 &= mask51
	r0 += c * 19

	v[0], v[1], v[2], v[3], v[4] = r0, r1, r2, r3, r4
}

// reduceFull brings v to its canonical representative in [0, p).
func (v *fe25519) reduceFull() {
	v.carry()
	v.carry()
	// v < 2^255 + small now; subtract p iff v >= p, detected by whether
	// v + 19 overflows 255 bits.
	c := (v[0] + 19) >> 51
	c = (v[1] + c) >> 51
	c = (v[2] + c) >> 51
	c = (v[3] + c) >> 51
	c = (v[4] + c) >> 51
	v[0] += 19 * c
	v[1] += v[0] >> 51
	v[0] &= mask51
	v[2] += v[1] >> 51
	v[1] &= mask51
	v[3] += v[2] >> 51
	v[2] &= mask51
	v[4] += v[3] >> 51
	v[3] &= mask51
	v[4] &= mask51 // drop the 2^255 bit
}

// SetBytes loads a 32-byte little-endian value, masking the top bit (the
// RFC 8032 convention); the value is reduced mod p.
func (v *fe25519) SetBytes(b []byte) {
	_ = b[31]
	v[0] = le64(b[0:]) & mask51
	v[1] = (le64(b[6:]) >> 3) & mask51
	v[2] = (le64(b[12:]) >> 6) & mask51
	v[3] = (le64(b[19:]) >> 1) & mask51
	v[4] = (le64(b[24:]) >> 12) & mask51
	v.reduceFull()
}

// isCanonicalBytes reports whether the 32-byte little-endian value (top bit
// masked off by the caller's convention check) is already < p.
func isCanonicalBytes25519(b []byte) bool {
	if b[31]&0x7f != 0x7f {
		return true
	}
	for i := 30; i > 0; i-- {
		if b[i] != 0xff {
			return true
		}
	}
	return b[0] < 0xed
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Bytes appends the canonical 32-byte little-endian encoding to dst.
func (v *fe25519) Bytes(dst []byte) []byte {
	var t fe25519
	t = *v
	t.reduceFull()
	w0 := t[0] | t[1]<<51
	w1 := t[1]>>13 | t[2]<<38
	w2 := t[2]>>26 | t[3]<<25
	w3 := t[3]>>39 | t[4]<<12
	var out [32]byte
	for i, w := range [4]uint64{w0, w1, w2, w3} {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return append(dst, out[:]...)
}

// IsZero reports whether v == 0.
func (v *fe25519) IsZero() bool {
	var t fe25519
	t = *v
	t.reduceFull()
	return t[0]|t[1]|t[2]|t[3]|t[4] == 0
}

// Equal reports whether v == a.
func (v *fe25519) Equal(a *fe25519) bool {
	var t, u fe25519
	t = *v
	u = *a
	t.reduceFull()
	u.reduceFull()
	return t == u
}

// IsNegative reports whether the canonical encoding of v is odd — the
// RFC 8032 / ristretto sign convention.
func (v *fe25519) IsNegative() bool {
	var t fe25519
	t = *v
	t.reduceFull()
	return t[0]&1 == 1
}

// Abs sets v = a if a is non-negative, -a otherwise.
func (v *fe25519) Abs(a *fe25519) {
	if a.IsNegative() {
		v.Neg(a)
	} else {
		v.Set(a)
	}
}

// CondNeg sets v = -v if cond, in variable time (see the package note on
// timing).
func (v *fe25519) CondNeg(cond bool) {
	if cond {
		var t fe25519
		t.Neg(v)
		*v = t
	}
}

// toBig returns v as a big.Int.
func (v *fe25519) toBig() *big.Int {
	var t fe25519
	t = *v
	t.reduceFull()
	x := new(big.Int)
	for i := 4; i >= 0; i-- {
		x.Lsh(x, 51)
		x.Or(x, new(big.Int).SetUint64(t[i]))
	}
	return x
}

// fromBig sets v from a big.Int (reduced mod p first).
func (v *fe25519) fromBig(x *big.Int) {
	t := new(big.Int).Mod(x, p25519)
	var b [32]byte
	t.FillBytes(b[:])
	// FillBytes is big-endian; SetBytes wants little-endian.
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	v.SetBytes(b[:])
}

// Invert sets v = a^-1 via Fermat exponentiation (a^(p-2)). Batch callers
// amortize this with the Montgomery trick (see batchInvert25519); solo
// callers pay the fixed 254-squaring addition chain below.
func (v *fe25519) Invert(a *fe25519) {
	// a^(p-2) = a^(2^255-21) = (a^(2^250-1))^(2^5) * a^11, via the standard
	// ref10 chain: 254 squarings + 11 multiplies, versus ~380 operations for
	// naive square-and-multiply over the same exponent.
	var t250, a11 fe25519
	pow250m1(&t250, &a11, a)
	for i := 0; i < 5; i++ {
		t250.Square(&t250)
	}
	v.Mul(&t250, &a11)
}

// pow22523 sets v = a^(2^252-3), the (p-5)/8 exponent used by SqrtRatio:
// (a^(2^250-1))^(2^2) * a.
func (v *fe25519) pow22523(a *fe25519) {
	var t250, a11 fe25519
	pow250m1(&t250, &a11, a)
	t250.Square(&t250)
	t250.Square(&t250)
	v.Mul(&t250, a)
}

// pow250m1 computes t250 = a^(2^250-1) and, as a byproduct of the chain's
// prefix, a11 = a^11. Shared tail of Invert and pow22523.
func pow250m1(t250, a11, a *fe25519) {
	var t0, t1, t2, t3 fe25519
	t0.Square(a)      // a^2
	t1.Square(&t0)    //
	t1.Square(&t1)    // a^8
	t1.Mul(a, &t1)    // a^9
	a11.Mul(&t0, &t1) // a^11
	t2.Square(a11)    // a^22
	t1.Mul(&t1, &t2)  // a^31 = a^(2^5-1)
	t2.Square(&t1)    //
	for i := 0; i < 4; i++ {
		t2.Square(&t2)
	}
	t1.Mul(&t2, &t1) // a^(2^10-1)
	t2.Square(&t1)   //
	for i := 0; i < 9; i++ {
		t2.Square(&t2)
	}
	t2.Mul(&t2, &t1) // a^(2^20-1)
	t3.Square(&t2)   //
	for i := 0; i < 19; i++ {
		t3.Square(&t3)
	}
	t2.Mul(&t3, &t2) // a^(2^40-1)
	for i := 0; i < 10; i++ {
		t2.Square(&t2)
	}
	t1.Mul(&t2, &t1) // a^(2^50-1)
	t2.Square(&t1)   //
	for i := 0; i < 49; i++ {
		t2.Square(&t2)
	}
	t2.Mul(&t2, &t1) // a^(2^100-1)
	t3.Square(&t2)   //
	for i := 0; i < 99; i++ {
		t3.Square(&t3)
	}
	t2.Mul(&t3, &t2) // a^(2^200-1)
	for i := 0; i < 50; i++ {
		t2.Square(&t2)
	}
	t250.Mul(&t2, &t1) // a^(2^250-1)
}

// sqrtM1_25519 is sqrt(-1) = 2^((p-1)/4) mod p.
var sqrtM1_25519 = func() *fe25519 {
	e := new(big.Int).Sub(p25519, big.NewInt(1))
	e.Rsh(e, 2)
	r := new(big.Int).Exp(big.NewInt(2), e, p25519)
	var f fe25519
	f.fromBig(r)
	return &f
}()

// SqrtRatio sets v = sqrt(u/w) and returns true when u/w is square; when it
// is not, v is set to sqrt(i·u/w) (i = sqrt(-1)) and false is returned. The
// result is the non-negative root. This is the ristretto255 SQRT_RATIO_M1
// primitive, used by point decompression and the hash-to-group map.
func (v *fe25519) SqrtRatio(u, w *fe25519) bool {
	var w3, w7, uw7, r, check, t fe25519
	w3.Square(w)     // w^2
	w3.Mul(&w3, w)   // w^3
	w7.Square(&w3)   // w^6
	w7.Mul(&w7, w)   // w^7
	uw7.Mul(u, &w7)  // u·w^7
	r.pow22523(&uw7) // (u·w^7)^((p-5)/8)
	r.Mul(&r, &w3)
	r.Mul(&r, u) // r = u·w^3·(u·w^7)^((p-5)/8)

	check.Square(&r)
	check.Mul(&check, w) // w·r^2
	var negU fe25519
	negU.Neg(u)
	wasSquare := check.Equal(u)
	flippedSign := check.Equal(&negU)
	t.Mul(&negU, sqrtM1_25519)
	flippedSignI := check.Equal(&t)
	if flippedSign || flippedSignI {
		r.Mul(&r, sqrtM1_25519)
	}
	v.Abs(&r)
	return wasSquare || flippedSign
}

// batchInvert25519 replaces each non-zero element of zs with its inverse
// using one field inversion for the whole slice (the Montgomery trick:
// prefix products forward, one Invert, suffix unwinding backward). Zero
// entries are left as zero, preserving point-at-infinity slots.
func batchInvert25519(zs []*fe25519) {
	n := len(zs)
	if n == 0 {
		return
	}
	prefix := make([]fe25519, n)
	var acc fe25519
	acc.One()
	for i, z := range zs {
		prefix[i] = acc
		if !z.IsZero() {
			acc.Mul(&acc, z)
		}
	}
	var inv fe25519
	inv.Invert(&acc)
	for i := n - 1; i >= 0; i-- {
		z := zs[i]
		if z.IsZero() {
			continue
		}
		var t fe25519
		t.Mul(&inv, &prefix[i])
		inv.Mul(&inv, z)
		*z = t
	}
}
