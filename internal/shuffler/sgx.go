package shuffler

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"prochlo/internal/core"
	"prochlo/internal/crypto/hybrid"
	"prochlo/internal/oblivious"
	"prochlo/internal/sgx"
)

// SGXShuffler is the hardened shuffler of §4.1: it runs inside a (simulated)
// SGX enclave, attests a freshly generated public key (§4.1.1), obliviously
// shuffles each batch with the Stash Shuffle (§4.1.4), and applies crowd
// thresholding with private counters (§4.1.5). The organization hosting it
// learns only the sequence of fixed-size encrypted reads/writes and the
// global selectivity of thresholding.
type SGXShuffler struct {
	Enclave   *sgx.Enclave
	Threshold Threshold
	Rand      *rand.Rand
	Seed      uint64 // deterministic stash shuffling for tests
	MinBatch  int    // anonymity floor per epoch; 0 selects DefaultMinBatch
	Workers   int    // Stash Shuffle distribution workers; 0 = GOMAXPROCS, 1 = serial

	priv *hybrid.PrivateKey

	// Metrics of the most recent batch's oblivious shuffle.
	ShuffleMetrics oblivious.StashMetrics
}

// SGXShufflerMeasurement is the code identity clients expect in quotes.
var SGXShufflerMeasurement = sgx.Measure("prochlo-stash-shuffler-v1")

// NewSGXShuffler generates the shuffler's key pair inside the enclave and
// returns the shuffler along with the attestation quote over its public key.
// Clients must verify the quote against the CA key and
// SGXShufflerMeasurement before encrypting to the key; keys are ephemeral
// per §4.1.1 ("the shuffler must create a new key pair every time it
// restarts").
func NewSGXShuffler(ca *sgx.CA, threshold Threshold, rng *rand.Rand) (*SGXShuffler, sgx.Quote, error) {
	enclave := sgx.New(sgx.DefaultEPC, SGXShufflerMeasurement)
	ca.Provision(enclave)
	priv, err := hybrid.GenerateKey(cryptoReader())
	if err != nil {
		return nil, sgx.Quote{}, err
	}
	enclave.CountPubKey()
	quote, err := enclave.GenerateQuote(priv.Public().Bytes())
	if err != nil {
		return nil, sgx.Quote{}, err
	}
	return &SGXShuffler{Enclave: enclave, Threshold: threshold, Rand: rng, priv: priv}, quote, nil
}

// PublicKey returns the attested key clients should encrypt to.
func (s *SGXShuffler) PublicKey() *hybrid.PublicKey { return s.priv.Public() }

// outerPeelCodec peels the shuffler layer during the Stash Shuffle's
// distribution phase (the public-key work that §5.1 identifies as the
// dominant cost) and passes payloads through on output.
type outerPeelCodec struct {
	priv    *hybrid.PrivateKey
	enclave *sgx.Enclave
	pSize   int
}

func (c outerPeelCodec) Open(ct []byte) ([]byte, error) {
	c.enclave.CountPubKey()
	return c.priv.Open(ct, nil)
}

func (c outerPeelCodec) Seal(pt []byte) ([]byte, error) { return pt, nil }

func (c outerPeelCodec) PlainSize(recordSize int) int { return recordSize - hybrid.Overhead }

func (c outerPeelCodec) SealedSize(plainSize int) int { return plainSize }

// ErrNonUniformBatch is returned when envelopes differ in size; oblivious
// shuffling requires uniform records, so encoders must pad data to a fixed
// report size.
var ErrNonUniformBatch = errors.New("shuffler: batch records are not uniform size")

// Process obliviously shuffles the batch, thresholds crowds with private
// counters, and returns the surviving inner ciphertexts in shuffled order.
func (s *SGXShuffler) Process(batch []core.Envelope) ([][]byte, Stats, error) {
	stats := Stats{Received: len(batch)}
	if len(batch) == 0 {
		return nil, stats, fmt.Errorf("%w: empty", ErrBatchTooSmall)
	}
	blobs := make([][]byte, len(batch))
	size := len(batch[0].Blob)
	for i := range batch {
		batch[i].StripMetadata()
		if len(batch[i].Blob) != size {
			return nil, stats, ErrNonUniformBatch
		}
		blobs[i] = batch[i].Blob
	}

	// Oblivious shuffle; output records are crowdID || inner.
	codec := outerPeelCodec{priv: s.priv, enclave: s.Enclave}
	st := oblivious.NewStashShuffle(s.Enclave, codec, len(blobs))
	st.Seed = s.Seed
	st.Workers = s.Workers
	shuffled, err := st.Shuffle(blobs)
	if err != nil {
		return nil, stats, fmt.Errorf("shuffler: oblivious shuffle: %w", err)
	}
	s.ShuffleMetrics = st.Metrics

	// §4.1.5 thresholding: one pass to count crowd IDs in private memory,
	// one pass to filter. The counter table is charged to the enclave.
	counterMem := int64(len(shuffled) * (core.CrowdIDSize + 8))
	if err := s.Enclave.Alloc(counterMem); err != nil {
		return nil, stats, err
	}
	defer s.Enclave.Free(counterMem)
	counts := make(map[core.CrowdID]int, len(shuffled)/4)
	var order []core.CrowdID // first-appearance order, for deterministic RNG use
	for _, rec := range shuffled {
		s.Enclave.ReadUntrusted(len(rec))
		var id core.CrowdID
		copy(id[:], rec[:core.CrowdIDSize])
		if counts[id] == 0 {
			order = append(order, id)
		}
		counts[id]++
	}
	stats.Crowds = len(counts)
	// Per-crowd forwarding budget after noisy thresholding, decided in
	// first-appearance order so a seeded run consumes the threshold RNG
	// deterministically (map iteration order would not).
	budget := make(map[core.CrowdID]int, len(counts))
	for _, id := range order {
		keep, ok := s.Threshold.Apply(s.Rand, counts[id])
		if !ok {
			continue
		}
		stats.CrowdsForwarded++
		budget[id] = keep
	}
	var out [][]byte
	for _, rec := range shuffled {
		s.Enclave.ReadUntrusted(len(rec))
		var id core.CrowdID
		copy(id[:], rec[:core.CrowdIDSize])
		if budget[id] > 0 {
			budget[id]--
			inner := rec[core.CrowdIDSize:]
			out = append(out, inner)
			s.Enclave.WriteUntrusted(len(inner))
		}
	}
	stats.Forwarded = len(out)
	return out, stats, nil
}

// cryptoReader returns the process CSPRNG; isolated for symmetry with the
// enclave's internal entropy source.
func cryptoReader() io.Reader { return crand.Reader }
