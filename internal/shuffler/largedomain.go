package shuffler

import (
	"fmt"

	"prochlo/internal/core"
	"prochlo/internal/oblivious"
)

// ProcessLargeDomain is §4.1.5's fallback for crowd-ID domains too large for
// in-enclave counters: the batch is obliviously *sorted* by crowd ID
// (Batcher's network at bucket granularity), bringing each crowd's records
// together so a constant-memory forward scan can count runs and threshold
// them; surviving records are then obliviously re-shuffled so the output
// order carries no grouping signal. As the paper notes, this costs an
// oblivious sort, so it should be preferred only when counters do not fit —
// "we have yet to encounter such large crowd ID domains in practice".
func (s *SGXShuffler) ProcessLargeDomain(batch []core.Envelope) ([][]byte, Stats, error) {
	stats := Stats{Received: len(batch)}
	if len(batch) == 0 {
		return nil, stats, fmt.Errorf("%w: empty", ErrBatchTooSmall)
	}
	blobs := make([][]byte, len(batch))
	size := len(batch[0].Blob)
	for i := range batch {
		batch[i].StripMetadata()
		if len(batch[i].Blob) != size {
			return nil, stats, ErrNonUniformBatch
		}
		blobs[i] = batch[i].Blob
	}

	// Oblivious sort by crowd ID, peeling the outer layer on ingest. The
	// bucket size is chosen so two buckets fill at most a quarter of the
	// enclave, leaving room for the scan and the final shuffle.
	codec := outerPeelCodec{priv: s.priv, enclave: s.Enclave}
	bucket := oblivious.EnclaveItemCapacity(s.Enclave.Limit()/4, size)
	if bucket < 2 {
		bucket = 2
	}
	sorter := &oblivious.BatcherShuffle{
		Enclave: s.Enclave, Codec: codec,
		BucketSize: bucket, SortByPrefix: true, Seed: s.Seed,
	}
	sorted, err := sorter.Shuffle(blobs)
	if err != nil {
		return nil, stats, fmt.Errorf("shuffler: oblivious sort: %w", err)
	}

	// Forward scan with O(1) private state: count each crowd's run, decide
	// its fate with the noisy threshold, and emit survivors' inner blobs.
	var out [][]byte
	flushRun := func(run [][]byte) {
		if len(run) == 0 {
			return
		}
		stats.Crowds++
		keep, ok := s.Threshold.Apply(s.Rand, len(run))
		if !ok {
			return
		}
		stats.CrowdsForwarded++
		if keep > len(run) {
			keep = len(run)
		}
		out = append(out, run[:keep]...)
	}
	var run [][]byte
	var runID core.CrowdID
	for _, rec := range sorted {
		s.Enclave.ReadUntrusted(len(rec))
		var id core.CrowdID
		copy(id[:], rec[:core.CrowdIDSize])
		if id != runID && run != nil {
			flushRun(run)
			run = nil
		}
		runID = id
		run = append(run, rec[core.CrowdIDSize:])
	}
	flushRun(run)
	stats.Forwarded = len(out)
	if len(out) == 0 {
		return nil, stats, nil
	}

	// Re-shuffle survivors so adjacency does not reveal crowd grouping.
	final := oblivious.NewStashShuffle(s.Enclave, oblivious.Passthrough{}, len(out))
	final.Seed = s.Seed
	final.Workers = s.Workers
	shuffled, err := final.Shuffle(out)
	if err != nil {
		return nil, stats, fmt.Errorf("shuffler: final shuffle: %w", err)
	}
	for _, rec := range shuffled {
		s.Enclave.WriteUntrusted(len(rec))
	}
	return shuffled, stats, nil
}
