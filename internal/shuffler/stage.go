package shuffler

import (
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"prochlo/internal/core"
)

// Stage is the common face of every shuffler variant: one hop of an ESA
// chain that consumes an epoch batch and emits the batch for the next hop.
// The plain Shuffler and the SGXShuffler consume client envelopes and emit
// peeled payloads for the analyzer; Shuffler1 consumes blinded envelopes and
// emits blinded envelopes for Shuffler2; Shuffler2 consumes blinded
// envelopes and emits peeled payloads. Because every variant speaks
// core.Batch, the same epoch engine (internal/transport) and the same
// in-process pipeline driver can run any of them, and a chain topology is
// just stages wired output-to-input — in one process or across daemons.
type Stage interface {
	// ProcessEpoch consumes one cut epoch and returns the batch to forward
	// to the next hop, plus the selectivity stats the stage's host is
	// allowed to observe. It fails if the batch kind is not the stage's
	// input kind (a miswired topology) or violates the anonymity floor.
	ProcessEpoch(in core.Batch) (out core.Batch, stats Stats, err error)
	// Floor is the stage's anonymity floor: the minimum number of items an
	// epoch must hold before the stage may process it. Epoch schedulers use
	// it to refuse cutting smaller epochs.
	Floor() int
}

// wrongKind is the miswired-topology error: a stage was handed a batch of
// the wrong wire kind.
func wrongKind(stage string, want, got core.BatchKind) error {
	return fmt.Errorf("shuffler: %s expects %s, got %s", stage, want, got)
}

// ProcessEpoch implements Stage: envelopes in, peeled payloads out.
func (s *Shuffler) ProcessEpoch(in core.Batch) (core.Batch, Stats, error) {
	if k := in.Kind(); k != core.KindEnvelopes && k != core.KindEmpty {
		return core.Batch{}, Stats{}, wrongKind("shuffler", core.KindEnvelopes, k)
	}
	out, stats, err := s.Process(in.Envelopes)
	return core.Batch{Payloads: out}, stats, err
}

// Floor implements Stage.
func (s *Shuffler) Floor() int {
	if s.MinBatch > 0 {
		return s.MinBatch
	}
	return DefaultMinBatch
}

// ProcessEpoch implements Stage: envelopes in, peeled payloads out, shuffled
// obliviously inside the enclave.
func (s *SGXShuffler) ProcessEpoch(in core.Batch) (core.Batch, Stats, error) {
	if k := in.Kind(); k != core.KindEnvelopes && k != core.KindEmpty {
		return core.Batch{}, Stats{}, wrongKind("sgx shuffler", core.KindEnvelopes, k)
	}
	if min := s.Floor(); len(in.Envelopes) < min {
		return core.Batch{}, Stats{}, fmt.Errorf("%w: %d < %d", ErrBatchTooSmall, len(in.Envelopes), min)
	}
	out, stats, err := s.Process(in.Envelopes)
	return core.Batch{Payloads: out}, stats, err
}

// Floor implements Stage.
func (s *SGXShuffler) Floor() int {
	if s.MinBatch > 0 {
		return s.MinBatch
	}
	return DefaultMinBatch
}

// ProcessEpoch implements Stage: blinded envelopes in, blinded-and-shuffled
// envelopes out, bound for Shuffler 2. Shuffler 1 sees neither crowd IDs nor
// data, so its stats report only arrival and forwarding counts; envelopes
// whose crowd-ID points fail to parse are dropped and counted undecryptable.
func (s *Shuffler1) ProcessEpoch(in core.Batch) (core.Batch, Stats, error) {
	if k := in.Kind(); k != core.KindBlinded && k != core.KindEmpty {
		return core.Batch{}, Stats{}, wrongKind("shuffler 1", core.KindBlinded, k)
	}
	if min := s.Floor(); len(in.Blinded) < min {
		return core.Batch{}, Stats{}, fmt.Errorf("%w: %d < %d", ErrBatchTooSmall, len(in.Blinded), min)
	}
	out, err := s.Process(in.Blinded)
	stats := Stats{
		Received:      len(in.Blinded),
		Undecryptable: len(in.Blinded) - len(out),
		Forwarded:     len(out),
	}
	return core.Batch{Blinded: out}, stats, err
}

// Floor implements Stage.
func (s *Shuffler1) Floor() int {
	if s.MinBatch > 0 {
		return s.MinBatch
	}
	return DefaultMinBatch
}

// ProcessEpoch implements Stage: blinded envelopes in, peeled payloads out.
func (s *Shuffler2) ProcessEpoch(in core.Batch) (core.Batch, Stats, error) {
	if k := in.Kind(); k != core.KindBlinded && k != core.KindEmpty {
		return core.Batch{}, Stats{}, wrongKind("shuffler 2", core.KindBlinded, k)
	}
	if min := s.Floor(); len(in.Blinded) < min {
		return core.Batch{}, Stats{}, fmt.Errorf("%w: %d < %d", ErrBatchTooSmall, len(in.Blinded), min)
	}
	out, stats, err := s.Process(in.Blinded)
	return core.Batch{Payloads: out}, stats, err
}

// Floor implements Stage.
func (s *Shuffler2) Floor() int {
	if s.MinBatch > 0 {
		return s.MinBatch
	}
	return DefaultMinBatch
}

// StageRand derives the batch RNG for the named stage of a deployment. For
// seed != 0 the stream is deterministic and independent per stage name, so a
// networked chain — where each daemon owns exactly one stage and one RNG —
// reproduces the in-process pipeline exactly: prochlo.WithSeed gives each
// in-process stage StageRand(seed, name), and a daemon started with the same
// seed and role name draws the identical sequence. (A single shared RNG
// would not survive the split: stage B's draws would depend on how many
// draws stage A consumed in the same process.) Stage names in use:
// "shuffler" (plain and SGX), "shuffler1", "shuffler2".
//
// For seed == 0 the RNG is seeded from crypto/rand (production).
func StageRand(seed uint64, stage string) (*rand.Rand, error) {
	if seed == 0 {
		var b [16]byte
		if _, err := crand.Read(b[:]); err != nil {
			return nil, err
		}
		return rand.New(rand.NewPCG(
			binary.LittleEndian.Uint64(b[:8]), binary.LittleEndian.Uint64(b[8:]))), nil
	}
	h := sha256.Sum256([]byte("prochlo-stage-rng:" + stage))
	return rand.New(rand.NewPCG(
		seed^binary.LittleEndian.Uint64(h[:8]),
		(seed^0xa5a5a5a5)^binary.LittleEndian.Uint64(h[8:16]))), nil
}
