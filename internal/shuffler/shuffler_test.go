package shuffler

import (
	"bytes"
	crand "crypto/rand"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"prochlo/internal/core"
	"prochlo/internal/crypto/elgamal"
	"prochlo/internal/crypto/hybrid"
	"prochlo/internal/dp"
	"prochlo/internal/encoder"
	"prochlo/internal/sgx"
)

func newRNG() *rand.Rand { return rand.New(rand.NewPCG(11, 13)) }

type fixture struct {
	shufPriv *hybrid.PrivateKey
	anlzPriv *hybrid.PrivateKey
	client   *encoder.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	shuf, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	anlz, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		shufPriv: shuf,
		anlzPriv: anlz,
		client: &encoder.Client{
			ShufflerKey: shuf.Public(), AnalyzerKey: anlz.Public(), Rand: crand.Reader,
		},
	}
}

// submit encodes count reports with the given crowd label and data.
func (f *fixture) submit(t *testing.T, crowd string, data []byte, count int) []core.Envelope {
	t.Helper()
	envs := make([]core.Envelope, count)
	for i := range envs {
		env, err := f.client.Encode(core.Report{CrowdID: core.HashCrowdID(crowd), Data: data})
		if err != nil {
			t.Fatal(err)
		}
		env.SourceIP = fmt.Sprintf("10.0.0.%d", i%250)
		env.ArrivalTime = time.Now()
		env.SeqNo = i
		envs[i] = env
	}
	return envs
}

func (f *fixture) openAll(t *testing.T, inner [][]byte) []string {
	t.Helper()
	out := make([]string, 0, len(inner))
	for _, ct := range inner {
		pt, err := f.anlzPriv.Open(ct, nil)
		if err != nil {
			t.Fatalf("analyzer failed to open forwarded record: %v", err)
		}
		out = append(out, string(pt))
	}
	return out
}

func TestShufflerThresholding(t *testing.T) {
	f := newFixture(t)
	batch := f.submit(t, "big", []byte("common-value...................."), 100)
	batch = append(batch, f.submit(t, "tiny", []byte("rare-value......................"), 3)...)
	s := &Shuffler{Priv: f.shufPriv, Threshold: Threshold{Noise: dp.PaperThresholdNoise}, Rand: newRNG()}
	inner, stats, err := s.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Received != 103 || stats.Crowds != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.CrowdsForwarded != 1 {
		t.Errorf("CrowdsForwarded = %d, want 1 (tiny crowd must be dropped)", stats.CrowdsForwarded)
	}
	values := f.openAll(t, inner)
	for _, v := range values {
		if v != "common-value...................." {
			t.Fatalf("rare value leaked through thresholding: %q", v)
		}
	}
	// Noisy thresholding drops ~10 items from the big crowd.
	if len(values) < 70 || len(values) > 100 {
		t.Errorf("forwarded %d of 100, want ~90", len(values))
	}
}

func TestShufflerStripsMetadata(t *testing.T) {
	f := newFixture(t)
	batch := f.submit(t, "c", []byte("data............................"), 30)
	s := &Shuffler{Priv: f.shufPriv, Threshold: Threshold{}, Rand: newRNG()}
	if _, _, err := s.Process(batch); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i].SourceIP != "" || !batch[i].ArrivalTime.IsZero() || batch[i].SeqNo != 0 {
			t.Fatalf("envelope %d metadata not stripped: %+v", i, batch[i])
		}
	}
}

func TestShufflerShufflesOrder(t *testing.T) {
	f := newFixture(t)
	var batch []core.Envelope
	for i := 0; i < 200; i++ {
		batch = append(batch, f.submit(t, "c", []byte(fmt.Sprintf("item-%03d", i)), 1)...)
	}
	s := &Shuffler{Priv: f.shufPriv, Threshold: Threshold{}, Rand: newRNG()}
	inner, _, err := s.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	values := f.openAll(t, inner)
	inOrder := 0
	for i := range values {
		if values[i] == fmt.Sprintf("item-%03d", i) {
			inOrder++
		}
	}
	if inOrder > 20 {
		t.Errorf("%d of 200 items kept submission order; output not shuffled", inOrder)
	}
}

func TestShufflerBatchTooSmall(t *testing.T) {
	f := newFixture(t)
	batch := f.submit(t, "c", []byte("x"), 3)
	s := &Shuffler{Priv: f.shufPriv, Rand: newRNG(), MinBatch: 10}
	if _, _, err := s.Process(batch); !errors.Is(err, ErrBatchTooSmall) {
		t.Fatalf("err = %v, want ErrBatchTooSmall", err)
	}
}

func TestShufflerUndecryptable(t *testing.T) {
	f := newFixture(t)
	batch := f.submit(t, "c", []byte("ok.............................."), 40)
	batch = append(batch, core.Envelope{Blob: bytes.Repeat([]byte{0x42}, 100)})
	s := &Shuffler{Priv: f.shufPriv, Threshold: Threshold{}, Rand: newRNG()}
	_, stats, err := s.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Undecryptable != 1 {
		t.Errorf("Undecryptable = %d, want 1", stats.Undecryptable)
	}
}

func TestNaiveThreshold(t *testing.T) {
	rng := newRNG()
	th := Threshold{Naive: 10}
	if _, ok := th.Apply(rng, 9); ok {
		t.Error("crowd of 9 passed naive threshold 10")
	}
	if n, ok := th.Apply(rng, 10); !ok || n != 10 {
		t.Error("crowd of exactly 10 should pass naive threshold untouched")
	}
}

func TestNoThreshold(t *testing.T) {
	rng := newRNG()
	th := Threshold{}
	if n, ok := th.Apply(rng, 1); !ok || n != 1 {
		t.Error("disabled thresholding should forward everything")
	}
}

// TestBlindedPipeline exercises the full §4.3 split-shuffler flow.
func TestBlindedPipeline(t *testing.T) {
	anlz, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	s2Priv, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blindKP, err := elgamal.GenerateKeyPair(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client := &encoder.BlindedClient{
		Shuffler2Blinding: blindKP.H,
		Shuffler2Key:      s2Priv.Public(),
		AnalyzerKey:       anlz.Public(),
		Rand:              crand.Reader,
	}
	var batch []core.BlindedEnvelope
	add := func(crowd, data string, n int) {
		for i := 0; i < n; i++ {
			env, err := client.Encode(crowd, []byte(data))
			if err != nil {
				t.Fatal(err)
			}
			env.SourceIP = "192.0.2.7"
			batch = append(batch, env)
		}
	}
	add("crowd-popular", "popular", 80)
	add("crowd-rare", "rare", 2)

	s1, err := NewShuffler1(newRNG())
	if err != nil {
		t.Fatal(err)
	}
	blinded, err := s1.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(blinded) != 82 {
		t.Fatalf("shuffler 1 forwarded %d, want 82", len(blinded))
	}
	// Shuffler 1 must not forward the original crowd ciphertexts.
	origC1 := map[string]bool{}
	for _, e := range batch {
		origC1[string(e.CrowdC1)] = true
	}
	for _, e := range blinded {
		if origC1[string(e.CrowdC1)] {
			t.Fatal("shuffler 1 forwarded an unblinded crowd ciphertext")
		}
	}

	s2 := &Shuffler2{Blinding: blindKP, Priv: s2Priv,
		Threshold: Threshold{Noise: dp.PaperThresholdNoise}, Rand: newRNG()}
	inner, stats, err := s2.Process(blinded)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crowds != 2 || stats.CrowdsForwarded != 1 {
		t.Errorf("stats = %+v, want 2 crowds, 1 forwarded", stats)
	}
	for _, ct := range inner {
		pt, err := anlz.Open(ct, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(pt) != "popular" {
			t.Fatalf("rare value leaked: %q", pt)
		}
	}
	if len(inner) < 55 || len(inner) > 80 {
		t.Errorf("forwarded %d of 80, want ~70", len(inner))
	}
}

// TestSGXShufflerEndToEnd exercises attestation, oblivious shuffling, and
// in-enclave thresholding.
func TestSGXShufflerEndToEnd(t *testing.T) {
	ca, err := sgx.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	sh, quote, err := NewSGXShuffler(ca, Threshold{Noise: dp.PaperThresholdNoise}, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	// Client-side verification (§4.1.1).
	if err := sgx.VerifyQuote(ca.PublicKey(), quote, SGXShufflerMeasurement); err != nil {
		t.Fatalf("attestation failed: %v", err)
	}
	attested, err := hybrid.ParsePublicKey(quote.ReportData)
	if err != nil {
		t.Fatal(err)
	}
	anlz, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client := &encoder.Client{ShufflerKey: attested, AnalyzerKey: anlz.Public(), Rand: crand.Reader}

	pad := func(s string) []byte {
		b := make([]byte, 64)
		copy(b, s)
		return b
	}
	var batch []core.Envelope
	add := func(crowd, data string, n int) {
		for i := 0; i < n; i++ {
			env, err := client.Encode(core.Report{CrowdID: core.HashCrowdID(crowd), Data: pad(data)})
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, env)
		}
	}
	add("app-1", "value-1", 150)
	add("app-2", "value-2", 60)
	add("app-3", "value-3", 4)

	inner, stats, err := sh.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crowds != 3 || stats.CrowdsForwarded != 2 {
		t.Errorf("stats = %+v, want 3 crowds, 2 forwarded", stats)
	}
	seen := map[string]int{}
	for _, ct := range inner {
		pt, err := anlz.Open(ct, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(bytes.TrimRight(pt, "\x00"))]++
	}
	if seen["value-3"] != 0 {
		t.Error("below-threshold crowd leaked through SGX thresholding")
	}
	if seen["value-1"] < 120 || seen["value-2"] < 35 {
		t.Errorf("forwarded counts %v below expectation", seen)
	}
	if sh.ShuffleMetrics.Items != len(batch) {
		t.Errorf("shuffle metrics items = %d, want %d", sh.ShuffleMetrics.Items, len(batch))
	}
	if sh.Enclave.Counters().PubKeyOps < int64(len(batch)) {
		t.Error("outer-layer public-key decryptions not metered")
	}
}

func TestSGXShufflerRejectsRaggedBatch(t *testing.T) {
	ca, _ := sgx.NewCA()
	sh, _, err := NewSGXShuffler(ca, Threshold{}, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	anlz, _ := hybrid.GenerateKey(crand.Reader)
	client := &encoder.Client{ShufflerKey: sh.PublicKey(), AnalyzerKey: anlz.Public(), Rand: crand.Reader}
	e1, _ := client.Encode(core.Report{CrowdID: core.HashCrowdID("c"), Data: make([]byte, 64)})
	e2, _ := client.Encode(core.Report{CrowdID: core.HashCrowdID("c"), Data: make([]byte, 32)})
	if _, _, err := sh.Process([]core.Envelope{e1, e2}); !errors.Is(err, ErrNonUniformBatch) {
		t.Fatalf("err = %v, want ErrNonUniformBatch", err)
	}
}

func TestSGXShufflerEmptyBatch(t *testing.T) {
	ca, _ := sgx.NewCA()
	sh, _, err := NewSGXShuffler(ca, Threshold{}, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sh.Process(nil); !errors.Is(err, ErrBatchTooSmall) {
		t.Fatalf("err = %v, want ErrBatchTooSmall", err)
	}
}
