package shuffler

import (
	"math/rand/v2"
	"sort"
	"sync"
)

// This file is the shared worker-pool core of the three Process paths
// (Shuffler, Shuffler1, Shuffler2): envelopes are decrypted or blinded by a
// pool of workers writing positionally into a preallocated slice (no shared
// state, no locks), then merged into crowd groups by shard-of-crowd-ID-prefix
// maps — each shard goroutine owns its map outright, so there is no map
// contention — and finally thresholded and shuffled serially, consuming the
// batch RNG in a deterministic order.
//
// Determinism contract: for a fixed batch and a fixed *rand.Rand seed, the
// output is byte-identical for every worker count. The parallel phases write
// only positionally-owned state; crowd groups are ordered by first appearance
// in the batch (a total order independent of worker interleaving); and all
// RNG consumption happens in the serial thresholding phase.

// group is one crowd's membership: the batch positions of its items in
// increasing order, plus the first position for deterministic ordering of the
// groups themselves.
type group struct {
	idxs  []int
	first int
}

// groupBy partitions the live items of a batch into groups with equal keys.
// live reports whether item i survived decryption, keyAt returns item i's
// group key, and shardOf maps a key to a uniformly distributed shard hint
// (a crowd-ID prefix byte). The returned groups are ordered by first
// appearance and each group's idxs are in increasing batch order, for every
// shard count.
func groupBy[K comparable](shards, n int, live func(int) bool, keyAt func(int) K, shardOf func(K) uint32) []group {
	collect := func(claim func(K) bool) []group {
		m := make(map[K]int)
		var groups []group
		for i := 0; i < n; i++ {
			if !live(i) {
				continue
			}
			k := keyAt(i)
			if !claim(k) {
				continue
			}
			gi, ok := m[k]
			if !ok {
				gi = len(groups)
				m[k] = gi
				groups = append(groups, group{first: i})
			}
			groups[gi].idxs = append(groups[gi].idxs, i)
		}
		return groups
	}
	if shards <= 1 {
		return collect(func(K) bool { return true })
	}
	perShard := make([][]group, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			perShard[s] = collect(func(k K) bool { return int(shardOf(k))%shards == s })
		}(s)
	}
	wg.Wait()
	var all []group
	for _, g := range perShard {
		all = append(all, g...)
	}
	// First-appearance positions are unique, so this ordering is total and
	// equals the serial single-map insertion order.
	sort.Slice(all, func(a, b int) bool { return all[a].first < all[b].first })
	return all
}

// applyThreshold runs crowd thresholding over the groups in their
// deterministic order, collects the surviving items' payloads, and shuffles
// the result so output order carries no grouping signal. It is the single
// point of RNG consumption in a Process call and always runs serially.
func applyThreshold(groups []group, th Threshold, rng *rand.Rand, inner func(int) []byte, stats *Stats) [][]byte {
	stats.Crowds = len(groups)
	var out [][]byte
	for gi := range groups {
		idxs := groups[gi].idxs
		keep, ok := th.Apply(rng, len(idxs))
		if !ok {
			continue
		}
		stats.CrowdsForwarded++
		// Drop a random subset down to the post-noise count.
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		if keep > len(idxs) {
			keep = len(idxs)
		}
		for _, i := range idxs[:keep] {
			out = append(out, inner(i))
		}
	}
	// Shuffle the batch so output order carries no grouping signal.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	stats.Forwarded = len(out)
	// Detach the survivors from the decryption buffers: the collected slices
	// alias the Process arena (the whole batch's peeled plaintext), so a
	// caller retaining even one forwarded ciphertext — a transport queue,
	// say — would pin the entire arena. After heavy thresholding the
	// survivors are a small fraction of the batch; one exact-size buffer
	// holds just their bytes, and the arena is collectable at return.
	total := 0
	for _, b := range out {
		total += len(b)
	}
	buf := make([]byte, 0, total)
	for i, b := range out {
		buf = append(buf, b...)
		out[i] = buf[len(buf)-len(b) : len(buf) : len(buf)]
	}
	return out
}
