package shuffler

import (
	"bytes"
	crand "crypto/rand"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"prochlo/internal/core"
	"prochlo/internal/crypto/elgamal"
	"prochlo/internal/crypto/hybrid"
	"prochlo/internal/dp"
	"prochlo/internal/encoder"
	"prochlo/internal/sgx"
)

// sortedCopies returns the multiset view of a forwarded-ciphertext batch.
func sortedCopies(in [][]byte) []string {
	out := make([]string, len(in))
	for i, b := range in {
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func equalByteSeqs(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestProcessParallelEquivalence is the tentpole's correctness contract: on
// a seeded batch, the worker-pool Process (Workers=4) must produce Stats and
// a forwarded-ciphertext sequence byte-identical to the serial reference
// path (Workers=1) — and hence, a fortiori, an identical multiset. Run with
// -race this is also the concurrency exercise of the decryption pool and the
// sharded grouping.
func TestProcessParallelEquivalence(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 2_000
	}
	f := newFixture(t)
	batch := make([]core.Envelope, 0, n+1)
	for i := 0; i < n; i++ {
		env, err := f.client.Encode(core.Report{
			CrowdID: core.HashCrowdID(fmt.Sprintf("crowd-%d", i%37)),
			Data:    []byte(fmt.Sprintf("item-%05d.....................", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		env.SourceIP = "198.51.100.7"
		env.SeqNo = i
		batch = append(batch, env)
	}
	// One undecryptable envelope keeps the failure path positional too.
	batch = append(batch, core.Envelope{Blob: bytes.Repeat([]byte{0x5a}, 200)})

	run := func(workers int) ([][]byte, Stats) {
		s := &Shuffler{
			Priv:      f.shufPriv,
			Threshold: Threshold{Noise: dp.PaperThresholdNoise},
			Rand:      rand.New(rand.NewPCG(7, 9)),
			Workers:   workers,
		}
		out, stats, err := s.Process(batch)
		if err != nil {
			t.Fatal(err)
		}
		return out, stats
	}
	serialOut, serialStats := run(1)
	parOut, parStats := run(4)

	if serialStats != parStats {
		t.Errorf("stats diverge: serial %+v, parallel %+v", serialStats, parStats)
	}
	if serialStats.Undecryptable != 1 {
		t.Errorf("Undecryptable = %d, want 1", serialStats.Undecryptable)
	}
	if !equalByteSeqs(serialOut, parOut) {
		t.Fatal("parallel Process output is not byte-identical to the serial reference")
	}
	sa, sb := sortedCopies(serialOut), sortedCopies(parOut)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("forwarded-ciphertext multisets diverge")
		}
	}
}

// TestSplitShufflerParallelEquivalence checks the §4.3 pair: Shuffler 1's
// blinding workers and Shuffler 2's pseudonym/decryption workers must match
// their serial reference paths byte for byte under fixed seeds.
func TestSplitShufflerParallelEquivalence(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 80
	}
	anlz, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	s2Priv, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blindKP, err := elgamal.GenerateKeyPair(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client := &encoder.BlindedClient{
		Shuffler2Blinding: blindKP.H,
		Shuffler2Key:      s2Priv.Public(),
		AnalyzerKey:       anlz.Public(),
		Rand:              crand.Reader,
	}
	batch := make([]core.BlindedEnvelope, n)
	for i := range batch {
		env, err := client.Encode(fmt.Sprintf("crowd-%d", i%7), []byte(fmt.Sprintf("v-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		env.SourceIP = "203.0.113.9"
		batch[i] = env
	}
	alpha, err := elgamal.RandomScalar(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	runS1 := func(workers int) []core.BlindedEnvelope {
		s1 := &Shuffler1{Alpha: alpha, Rand: rand.New(rand.NewPCG(3, 5)), Workers: workers}
		out, err := s1.Process(batch)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	blindedSerial := runS1(1)
	blindedPar := runS1(4)
	if len(blindedSerial) != len(blindedPar) {
		t.Fatalf("shuffler 1 lengths diverge: %d vs %d", len(blindedSerial), len(blindedPar))
	}
	for i := range blindedSerial {
		a, b := blindedSerial[i], blindedPar[i]
		if !bytes.Equal(a.CrowdC1, b.CrowdC1) || !bytes.Equal(a.CrowdC2, b.CrowdC2) || !bytes.Equal(a.Blob, b.Blob) {
			t.Fatalf("shuffler 1 output %d diverges between serial and parallel", i)
		}
	}

	runS2 := func(workers int) ([][]byte, Stats) {
		s2 := &Shuffler2{
			Blinding:  blindKP,
			Priv:      s2Priv,
			Threshold: Threshold{Naive: 5},
			Rand:      rand.New(rand.NewPCG(11, 13)),
			Workers:   workers,
		}
		out, stats, err := s2.Process(blindedSerial)
		if err != nil {
			t.Fatal(err)
		}
		return out, stats
	}
	serialOut, serialStats := runS2(1)
	parOut, parStats := runS2(4)
	if serialStats != parStats {
		t.Errorf("shuffler 2 stats diverge: serial %+v, parallel %+v", serialStats, parStats)
	}
	if !equalByteSeqs(serialOut, parOut) {
		t.Fatal("parallel Shuffler2 output is not byte-identical to the serial reference")
	}
}

// TestSGXShufflerParallelEquivalence checks the hardened path: with a fixed
// Stash Shuffle seed and thresholding RNG, the enclave shuffler's output is
// identical whether the distribution phase runs serially or on 4 workers.
func TestSGXShufflerParallelEquivalence(t *testing.T) {
	n := 1_000
	if testing.Short() {
		n = 300
	}
	ca, err := sgx.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := NewSGXShuffler(ca, Threshold{Noise: dp.PaperThresholdNoise}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh.Seed = 99
	anlz, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client := &encoder.Client{ShufflerKey: sh.PublicKey(), AnalyzerKey: anlz.Public(), Rand: crand.Reader}
	batch := make([]core.Envelope, n)
	for i := range batch {
		data := make([]byte, 48)
		copy(data, fmt.Sprintf("value-%d", i%11))
		env, err := client.Encode(core.Report{
			CrowdID: core.HashCrowdID(fmt.Sprintf("app-%d", i%11)), Data: data,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = env
	}
	run := func(workers int) ([][]byte, Stats) {
		sh.Rand = rand.New(rand.NewPCG(17, 19))
		sh.Workers = workers
		out, stats, err := sh.Process(batch)
		if err != nil {
			t.Fatal(err)
		}
		return out, stats
	}
	serialOut, serialStats := run(1)
	parOut, parStats := run(4)
	if serialStats != parStats {
		t.Errorf("stats diverge: serial %+v, parallel %+v", serialStats, parStats)
	}
	if !equalByteSeqs(serialOut, parOut) {
		t.Fatal("parallel SGX shuffler output is not byte-identical to the serial reference")
	}
}
