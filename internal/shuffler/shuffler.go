// Package shuffler implements the ESA intermediary (§3.3): it strips
// implicit metadata, batches reports, shuffles them, applies (randomized)
// crowd thresholding, peels the outer encryption layer, and forwards the
// anonymous inner ciphertexts to the analyzer. Three variants are provided:
//
//   - Shuffler: the plain, trusted-third-party shuffler used by the §5 case
//     studies ("the four case studies use non-oblivious shufflers");
//   - SGXShuffler: the hardened variant of §4.1, which runs the Stash
//     Shuffle and the §4.1.5 crowd thresholding inside a (simulated) SGX
//     enclave and attests its public key per §4.1.1;
//   - Shuffler1/Shuffler2: the split shuffler of §4.3, thresholding on
//     blinded crowd IDs so neither party sees them in the clear.
//
// Concurrency: each variant has a Workers knob (0 selects GOMAXPROCS,
// 1 forces the serial reference path). Per-report public-key work —
// envelope decryption, crowd-ID blinding, pseudonym recovery — runs on a
// worker pool; grouping, thresholding, and shuffling stay deterministic, so
// for a fixed batch and RNG seed the output is byte-identical at every
// worker count.
package shuffler

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"math/rand/v2"

	"prochlo/internal/core"
	"prochlo/internal/crypto/elgamal"
	cgroup "prochlo/internal/crypto/group"
	"prochlo/internal/crypto/hybrid"
	"prochlo/internal/dp"
	"prochlo/internal/parallel"
)

// Stats summarizes one processed batch; the shuffler's host learns only the
// global selectivity of thresholding (§4.1.5), which these stats model.
type Stats struct {
	Received        int // envelopes in the batch
	Undecryptable   int // envelopes that failed the outer layer
	Crowds          int // distinct crowd IDs seen
	CrowdsForwarded int // crowds surviving the threshold
	Forwarded       int // reports forwarded to the analyzer
}

// Threshold configures crowd-cardinality filtering. Exactly one mode is
// active: if Noise.Sigma > 0 the randomized thresholding of §3.5 is applied
// (drop d ~ round(N(D, sigma²)) items, then require >= T); otherwise a naive
// cardinality threshold of Naive is applied; Naive == 0 disables
// thresholding entirely (the Vocab "NoCrowd" configuration).
type Threshold struct {
	Noise dp.ThresholdNoise
	Naive int
}

// Apply returns the number of reports from a crowd of the given cardinality
// that should be forwarded, and whether the crowd survives.
func (t Threshold) Apply(rng *rand.Rand, count int) (int, bool) {
	if t.Noise.Sigma > 0 {
		return t.Noise.Survives(rng, count)
	}
	if t.Naive > 0 {
		if count >= t.Naive {
			return count, true
		}
		return 0, false
	}
	return count, true
}

// DefaultMinBatch is the default minimum batch size a shuffler will process;
// batching over an epoch is the first defense against traffic analysis.
const DefaultMinBatch = 2

// Shuffler is the plain single-shuffler stage.
type Shuffler struct {
	Priv      *hybrid.PrivateKey
	Threshold Threshold
	Rand      *rand.Rand
	MinBatch  int // minimum envelopes per batch; 0 selects DefaultMinBatch
	Workers   int // decryption/grouping workers; 0 = GOMAXPROCS, 1 = serial
}

// ErrBatchTooSmall is returned when a batch is below the minimum size;
// callers should keep batching (§3.3: "the shuffler batches data items for a
// while ... or until the batch is large enough").
var ErrBatchTooSmall = errors.New("shuffler: batch below minimum size")

// openedEnvelope is the per-position result of the decryption workers.
type openedEnvelope struct {
	crowd core.CrowdID
	inner []byte
	ok    bool
}

// Process strips metadata, peels the outer layer, groups by crowd ID,
// applies thresholding, and returns the surviving inner ciphertexts in
// shuffled order. Decryption and grouping run on the worker pool; see the
// package comment for the determinism contract.
func (s *Shuffler) Process(batch []core.Envelope) ([][]byte, Stats, error) {
	min := s.MinBatch
	if min == 0 {
		min = DefaultMinBatch
	}
	if len(batch) < min {
		return nil, Stats{}, fmt.Errorf("%w: %d < %d", ErrBatchTooSmall, len(batch), min)
	}
	stats := Stats{Received: len(batch)}
	workers := parallel.Workers(s.Workers)
	items := make([]openedEnvelope, len(batch))
	// All peeled payloads share one arena sized from the blob lengths (GCM
	// is length-preserving minus the envelope overhead), so decryption
	// allocates nothing per record beyond the crypto internals.
	arena := parallel.NewArena(len(batch), func(i int) int {
		return len(batch[i].Blob) - hybrid.Overhead
	})
	parallel.For(workers, len(batch), func(i int) {
		batch[i].StripMetadata()
		payload, err := s.Priv.OpenInto(arena.Slot(i), batch[i].Blob, nil)
		if err != nil || len(payload) < core.CrowdIDSize {
			return
		}
		copy(items[i].crowd[:], payload[:core.CrowdIDSize])
		items[i].inner = payload[core.CrowdIDSize:]
		items[i].ok = true
	})
	for i := range items {
		if !items[i].ok {
			stats.Undecryptable++
		}
	}
	groups := groupBy(workers, len(items),
		func(i int) bool { return items[i].ok },
		func(i int) core.CrowdID { return items[i].crowd },
		func(k core.CrowdID) uint32 { return uint32(k[0]) })
	out := applyThreshold(groups, s.Threshold, s.Rand,
		func(i int) []byte { return items[i].inner }, &stats)
	return out, stats, nil
}

// --- Split shuffler with blinded crowd IDs (§4.3) ---

// Shuffler1 blinds crowd-ID ciphertexts with its secret exponent, strips
// metadata, and shuffles. It cannot decrypt crowd IDs (no Shuffler 2 private
// key) nor data (no analyzer key).
type Shuffler1 struct {
	Alpha    *big.Int     // blinding exponent, fixed per batch epoch
	Group    cgroup.Group // El Gamal group backend; nil selects the default
	Rand     *rand.Rand
	MinBatch int // anonymity floor per epoch; 0 selects DefaultMinBatch
	Workers  int // blinding workers; 0 = GOMAXPROCS, 1 = serial
}

func (s *Shuffler1) group() cgroup.Group {
	if s.Group == nil {
		return cgroup.Default()
	}
	return s.Group
}

// NewShuffler1 draws a fresh blinding exponent on the default group.
func NewShuffler1(rng *rand.Rand) (*Shuffler1, error) {
	return NewShuffler1Group(cgroup.Default(), rng)
}

// NewShuffler1Group draws a fresh blinding exponent on an explicit group
// (the exponent range is the group order, so the backend must be fixed
// before the draw).
func NewShuffler1Group(g cgroup.Group, rng *rand.Rand) (*Shuffler1, error) {
	alpha, err := elgamal.RandomScalarGroup(g, crand.Reader)
	if err != nil {
		return nil, err
	}
	return &Shuffler1{Alpha: alpha, Group: g, Rand: rng}, nil
}

// blindChunk is the number of ciphertexts a worker feeds the El Gamal batch
// kernels per claim: large enough to amortize the per-chunk scalar recoding
// and the shared field inversion to noise, small enough to keep the worker
// pool's tail balanced.
const blindChunk = 256

// Process blinds and shuffles a batch, forwarding it for Shuffler 2. Parsing
// runs per envelope on the worker pool; the point multiplications run
// through Blinder.BlindBatch in chunks, so the epoch-fixed exponent is
// recoded once per chunk and each chunk's outputs are normalized with one
// shared inversion before encoding.
func (s *Shuffler1) Process(batch []core.BlindedEnvelope) ([]core.BlindedEnvelope, error) {
	g := s.group()
	blinder := elgamal.NewBlinderGroup(g, s.Alpha)
	workers := parallel.Workers(s.Workers)
	n := len(batch)
	cts := make([]elgamal.Ciphertext, n)
	ok := make([]bool, n)
	parallel.For(workers, n, func(i int) {
		batch[i].StripMetadata()
		c1, err := elgamal.ParsePoint(batch[i].CrowdC1)
		if err != nil || c1.Group().Name() != g.Name() {
			return
		}
		c2, err := elgamal.ParsePoint(batch[i].CrowdC2)
		if err != nil || c2.Group().Name() != g.Name() {
			return
		}
		cts[i] = elgamal.Ciphertext{C1: c1, C2: c2}
		ok[i] = true
	})
	// Compact to the valid envelopes (dropping unparsable or wrong-backend
	// crowd IDs), then blind chunk-wise on the pool.
	idx := make([]int, 0, n)
	for i := range ok {
		if ok[i] {
			idx = append(idx, i)
		}
	}
	valid := make([]elgamal.Ciphertext, len(idx))
	for j, i := range idx {
		valid[j] = cts[i]
	}
	chunks := (len(valid) + blindChunk - 1) / blindChunk
	parallel.For(workers, chunks, func(c int) {
		lo := c * blindChunk
		blinder.BlindBatch(valid[lo:min(lo+blindChunk, len(valid))])
	})
	out := make([]core.BlindedEnvelope, len(idx))
	parallel.For(workers, len(idx), func(j int) {
		out[j] = core.BlindedEnvelope{
			CrowdC1: valid[j].C1.Bytes(),
			CrowdC2: valid[j].C2.Bytes(),
			Blob:    batch[idx[j]].Blob,
			// Routing, not metadata: the client-stamped owning partition
			// must survive blinding for hop-2 fan-in.
			Partition: batch[idx[j]].Partition,
		}
	})
	s.Rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// Shuffler2 decrypts blinded crowd-ID pseudonyms, thresholds on them, peels
// its encryption layer, and forwards the inner ciphertexts. It never sees a
// crowd ID in the clear: only α·H(crowdID), useless for dictionary attacks
// without Shuffler 1's α.
type Shuffler2 struct {
	Blinding  *elgamal.KeyPair
	Priv      *hybrid.PrivateKey
	Threshold Threshold
	Rand      *rand.Rand
	MinBatch  int // anonymity floor per epoch; 0 selects DefaultMinBatch
	Workers   int // decryption workers; 0 = GOMAXPROCS, 1 = serial
}

// openedBlinded is the per-position result of Shuffler 2's workers.
type openedBlinded struct {
	ct     elgamal.Ciphertext
	pseudo string
	inner  []byte
	ok     bool
}

// Process thresholds on pseudonyms and returns surviving inner ciphertexts,
// shuffled. Envelope parsing and outer-layer peeling run per report on the
// worker pool; the El Gamal decryptions run through Decrypter.PseudonymBatch
// in chunks, so the private scalar is recoded once per chunk and all
// pseudonyms of a chunk are compressed after one shared inversion.
func (s *Shuffler2) Process(batch []core.BlindedEnvelope) ([][]byte, Stats, error) {
	stats := Stats{Received: len(batch)}
	workers := parallel.Workers(s.Workers)
	dec := s.Blinding.Decrypter()
	g := s.Blinding.G
	if g == nil {
		g = cgroup.Default()
	}
	items := make([]openedBlinded, len(batch))
	// Shared plaintext arena, as in Shuffler.Process.
	arena := parallel.NewArena(len(batch), func(i int) int {
		return len(batch[i].Blob) - hybrid.Overhead
	})
	parallel.For(workers, len(batch), func(i int) {
		c1, err1 := elgamal.ParsePoint(batch[i].CrowdC1)
		c2, err2 := elgamal.ParsePoint(batch[i].CrowdC2)
		inner, err3 := s.Priv.OpenInto(arena.Slot(i), batch[i].Blob, nil)
		if err1 != nil || err2 != nil || err3 != nil ||
			c1.Group().Name() != g.Name() || c2.Group().Name() != g.Name() {
			return
		}
		items[i].ct = elgamal.Ciphertext{C1: c1, C2: c2}
		items[i].inner = inner
		items[i].ok = true
	})
	idx := make([]int, 0, len(batch))
	for i := range items {
		if !items[i].ok {
			stats.Undecryptable++
			continue
		}
		idx = append(idx, i)
	}
	valid := make([]elgamal.Ciphertext, len(idx))
	for j, i := range idx {
		valid[j] = items[i].ct
	}
	chunks := (len(valid) + blindChunk - 1) / blindChunk
	parallel.For(workers, chunks, func(c int) {
		lo := c * blindChunk
		hi := min(lo+blindChunk, len(valid))
		for j, pseudo := range dec.PseudonymBatch(valid[lo:hi]) {
			items[idx[lo+j]].pseudo = pseudo
		}
	})
	groups := groupBy(workers, len(items),
		func(i int) bool { return items[i].ok },
		func(i int) string { return items[i].pseudo },
		func(k string) uint32 {
			// Byte 1 of either canonical encoding — the x-coordinate's
			// leading byte after the 0x02/0x03 tag on P-256, the
			// y-coordinate's second little-endian byte on ristretto255 —
			// is uniform enough to shard on.
			if len(k) > 1 {
				return uint32(k[1])
			}
			return 0
		})
	out := applyThreshold(groups, s.Threshold, s.Rand,
		func(i int) []byte { return items[i].inner }, &stats)
	return out, stats, nil
}
