package shuffler

import (
	"bytes"
	crand "crypto/rand"
	"testing"

	"prochlo/internal/core"
	"prochlo/internal/crypto/hybrid"
	"prochlo/internal/dp"
	"prochlo/internal/encoder"
	"prochlo/internal/sgx"
)

// TestProcessLargeDomain exercises the §4.1.5 sort-based thresholding path:
// crowds are counted with O(1) private state after an oblivious sort, rare
// crowds are dropped, and the output is re-shuffled.
func TestProcessLargeDomain(t *testing.T) {
	ca, err := sgx.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := NewSGXShuffler(ca, Threshold{Noise: dp.ThresholdNoise{T: 10, D: 4, Sigma: 1}}, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	anlz, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client := &encoder.Client{ShufflerKey: sh.PublicKey(), AnalyzerKey: anlz.Public(), Rand: crand.Reader}
	pad := func(s string) []byte {
		b := make([]byte, 32)
		copy(b, s)
		return b
	}
	var batch []core.Envelope
	add := func(crowd, data string, n int) {
		for i := 0; i < n; i++ {
			env, err := client.Encode(core.Report{CrowdID: core.HashCrowdID(crowd), Data: pad(data)})
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, env)
		}
	}
	add("crowd-a", "value-a", 60)
	add("crowd-b", "value-b", 40)
	add("crowd-c", "value-c", 2)

	inner, stats, err := sh.ProcessLargeDomain(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crowds != 3 || stats.CrowdsForwarded != 2 {
		t.Errorf("stats = %+v, want 3 crowds, 2 forwarded", stats)
	}
	counts := map[string]int{}
	for _, ct := range inner {
		pt, err := anlz.Open(ct, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[string(bytes.TrimRight(pt, "\x00"))]++
	}
	if counts["value-c"] != 0 {
		t.Error("rare crowd leaked through large-domain thresholding")
	}
	if counts["value-a"] < 40 || counts["value-b"] < 25 {
		t.Errorf("survivor counts %v below expectation", counts)
	}
	// The output must not be grouped by crowd: count adjacent same-value
	// pairs; perfect grouping would give ~len-2 adjacencies.
	values := make([]string, 0, len(inner))
	for _, ct := range inner {
		pt, _ := anlz.Open(ct, nil)
		values = append(values, string(pt))
	}
	adjacent := 0
	for i := 1; i < len(values); i++ {
		if values[i] == values[i-1] {
			adjacent++
		}
	}
	// For a ~60/40 split, random order gives ~52% adjacency; grouped order
	// gives ~99%. Flag anything suspiciously grouped.
	if float64(adjacent) > 0.8*float64(len(values)) {
		t.Errorf("%d of %d adjacent pairs share a value; output looks crowd-grouped", adjacent, len(values))
	}
}

func TestProcessLargeDomainEmpty(t *testing.T) {
	ca, _ := sgx.NewCA()
	sh, _, err := NewSGXShuffler(ca, Threshold{}, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sh.ProcessLargeDomain(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// TestProcessLargeDomainAllBelowThreshold: nothing survives, no error.
func TestProcessLargeDomainAllBelowThreshold(t *testing.T) {
	ca, _ := sgx.NewCA()
	sh, _, err := NewSGXShuffler(ca, Threshold{Naive: 100}, newRNG())
	if err != nil {
		t.Fatal(err)
	}
	anlz, _ := hybrid.GenerateKey(crand.Reader)
	client := &encoder.Client{ShufflerKey: sh.PublicKey(), AnalyzerKey: anlz.Public(), Rand: crand.Reader}
	var batch []core.Envelope
	for i := 0; i < 20; i++ {
		env, err := client.Encode(core.Report{CrowdID: core.HashCrowdID("tiny"), Data: make([]byte, 16)})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, env)
	}
	out, stats, err := sh.ProcessLargeDomain(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.Forwarded != 0 {
		t.Errorf("out=%d stats=%+v, want nothing forwarded", len(out), stats)
	}
}
