package vocab

import (
	crand "crypto/rand"
	"fmt"
	"math/rand/v2"
	"time"

	"prochlo/internal/core"
	"prochlo/internal/crypto/elgamal"
	"prochlo/internal/crypto/hybrid"
	"prochlo/internal/encoder"
	"prochlo/internal/shuffler"
)

// TimingResult is one row of Table 3: wall-clock execution of the Vocab
// pipeline for a number of clients, for the single-shuffler configurations
// (Secret-Crowd, NoCrowd, Crowd — whose costs are identical: two hybrid
// seals per client plus one shuffler decryption), and for the two-shuffler
// blinded configuration.
type TimingResult struct {
	Clients int
	// EncoderShuffler1 is the "Encoder+Shuffler 1 {Secret-C, NoC, C}"
	// column: client encoding plus single-shuffler processing.
	EncoderShuffler1 time.Duration
	// BlindedEncoderShuffler1 is the "Blinded-C" encoder+Shuffler 1
	// column: El Gamal crowd-ID encryption plus blinding.
	BlindedEncoderShuffler1 time.Duration
	// BlindedShuffler2 is the Shuffler 2 column: pseudonym decryption and
	// layer peeling.
	BlindedShuffler2 time.Duration
}

// MeasureTiming reproduces Table 3's measurement at the given client count.
// Costs scale linearly in clients and are dominated by public-key
// operations, the property the paper calls out.
func MeasureTiming(nClients int) (TimingResult, error) {
	res := TimingResult{Clients: nClients}
	rng := rand.New(rand.NewPCG(99, 101))

	shufPriv, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		return res, err
	}
	anlzPriv, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		return res, err
	}
	client := &encoder.Client{ShufflerKey: shufPriv.Public(), AnalyzerKey: anlzPriv.Public(), Rand: crand.Reader}

	// Single-shuffler path: encode every report, then shuffler-process.
	start := time.Now()
	batch := make([]core.Envelope, nClients)
	for i := range batch {
		w := fmt.Sprintf("word-%d", i%1000)
		env, err := client.Encode(core.Report{CrowdID: core.HashCrowdID(w), Data: []byte(w)})
		if err != nil {
			return res, err
		}
		batch[i] = env
	}
	s := &shuffler.Shuffler{Priv: shufPriv, Threshold: shuffler.Threshold{}, Rand: rng, MinBatch: 1}
	if _, _, err := s.Process(batch); err != nil {
		return res, err
	}
	res.EncoderShuffler1 = time.Since(start)

	// Blinded path.
	blindKP, err := elgamal.GenerateKeyPair(crand.Reader)
	if err != nil {
		return res, err
	}
	s2Priv, err := hybrid.GenerateKey(crand.Reader)
	if err != nil {
		return res, err
	}
	bclient := &encoder.BlindedClient{
		Shuffler2Blinding: blindKP.H, Shuffler2Key: s2Priv.Public(),
		AnalyzerKey: anlzPriv.Public(), Rand: crand.Reader,
	}
	start = time.Now()
	bbatch := make([]core.BlindedEnvelope, nClients)
	for i := range bbatch {
		w := fmt.Sprintf("word-%d", i%1000)
		env, err := bclient.Encode(w, []byte(w))
		if err != nil {
			return res, err
		}
		bbatch[i] = env
	}
	s1, err := shuffler.NewShuffler1(rng)
	if err != nil {
		return res, err
	}
	blinded, err := s1.Process(bbatch)
	if err != nil {
		return res, err
	}
	res.BlindedEncoderShuffler1 = time.Since(start)

	start = time.Now()
	s2 := &shuffler.Shuffler2{Blinding: blindKP, Priv: s2Priv, Threshold: shuffler.Threshold{}, Rand: rng}
	if _, _, err := s2.Process(blinded); err != nil {
		return res, err
	}
	res.BlindedShuffler2 = time.Since(start)
	return res, nil
}
