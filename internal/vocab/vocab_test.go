package vocab

import (
	"testing"

	"prochlo/internal/workload"
)

func TestFigure5Shape10K(t *testing.T) {
	cfg := DefaultConfig()
	rng := workload.NewRand(42)
	gt := cfg.Run(rng, GroundTruth, 10_000)
	nc := cfg.Run(rng, NoCrowd, 10_000)
	cr := cfg.Run(rng, Crowd, 10_000)
	rp := cfg.Run(rng, RAPPOR, 10_000)
	pt := cfg.Run(rng, Partition, 10_000)

	// Figure 5's ordering: ground truth >> NoCrowd >= Crowd >> Partition >= RAPPOR.
	if !(gt.Unique > nc.Unique && nc.Unique >= cr.Unique) {
		t.Errorf("ordering violated: gt=%d nc=%d crowd=%d", gt.Unique, nc.Unique, cr.Unique)
	}
	if !(cr.Unique > pt.Unique && pt.Unique >= rp.Unique) {
		t.Errorf("local-DP methods should trail: crowd=%d partition=%d rappor=%d",
			cr.Unique, pt.Unique, rp.Unique)
	}
	// Crowd-based methods recover a meaningful fraction at 10K (paper: 32
	// of 4062 ground truth, i.e. word counts >= ~30 survive).
	if cr.Unique < 5 || cr.Unique > gt.Unique/10 {
		t.Errorf("Crowd recovered %d of %d; outside plausible band", cr.Unique, gt.Unique)
	}
	// RAPPOR recovers almost nothing at 10K (paper: 2).
	if rp.Unique > 30 {
		t.Errorf("RAPPOR recovered %d at 10K; noise floor should hide nearly all", rp.Unique)
	}
}

func TestCrowdVariantsEquivalentUtility(t *testing.T) {
	cfg := DefaultConfig()
	// The three crowd variants share utility characteristics; with the
	// same RNG stream they threshold the same histogram.
	a := cfg.Run(workload.NewRand(7), Crowd, 50_000)
	b := cfg.Run(workload.NewRand(7), SecretCrowd, 50_000)
	c := cfg.Run(workload.NewRand(7), BlindedCrowd, 50_000)
	if a.Unique != b.Unique || b.Unique != c.Unique {
		t.Errorf("crowd variants diverge: %d, %d, %d", a.Unique, b.Unique, c.Unique)
	}
}

func TestNoCrowdBeatsCrowdSlightly(t *testing.T) {
	cfg := DefaultConfig()
	nc := cfg.Run(workload.NewRand(9), NoCrowd, 100_000)
	cr := cfg.Run(workload.NewRand(9), Crowd, 100_000)
	if nc.Unique < cr.Unique {
		t.Errorf("NoCrowd (%d) should recover at least as many as Crowd (%d): no noisy loss", nc.Unique, cr.Unique)
	}
	// "the utility loss due to noisy thresholding [is] very small".
	if cr.Unique*3 < nc.Unique*2 {
		t.Errorf("noisy-threshold loss too large: NoCrowd=%d, Crowd=%d", nc.Unique, cr.Unique)
	}
}

func TestPartitionImprovesRappor(t *testing.T) {
	cfg := DefaultConfig()
	rp := cfg.Run(workload.NewRand(11), RAPPOR, 100_000)
	pt := cfg.Run(workload.NewRand(11), Partition, 100_000)
	// §5.2: partitioning improves RAPPOR by 1.13x-3.45x.
	if pt.Unique < rp.Unique {
		t.Errorf("Partition (%d) should not trail plain RAPPOR (%d)", pt.Unique, rp.Unique)
	}
}

func TestPartitionsFor(t *testing.T) {
	cases := map[int]int{10_000: 4, 100_000: 16, 1_000_000: 64, 10_000_000: 256}
	for n, want := range cases {
		if got := PartitionsFor(n); got != want {
			t.Errorf("PartitionsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTimingScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	small, err := MeasureTiming(200)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeasureTiming(2000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.EncoderShuffler1) / float64(small.EncoderShuffler1)
	if ratio < 4 || ratio > 25 {
		t.Errorf("10x clients changed single-shuffler time by %.1fx, want ~10x (linear)", ratio)
	}
	// Blinded path is costlier than the plain path (extra El Gamal work).
	if large.BlindedEncoderShuffler1 <= large.EncoderShuffler1 {
		t.Errorf("blinded path (%v) should cost more than plain (%v)",
			large.BlindedEncoderShuffler1, large.EncoderShuffler1)
	}
}
