// Package vocab implements the §5.2 Vocab experiment: privately learning
// word frequencies over an empirical long-tail (Zipf) distribution, and the
// comparison of Figure 5 — how many unique words each collection method
// recovers at sample sizes from 10K to 10M:
//
//   - GroundTruth: distinct words with no privacy;
//   - NoCrowd: secret-share encoding with t=20 and a fixed crowd ID (no
//     thresholding, no DP);
//   - Crowd / SecretCrowd / BlindedCrowd: crowd thresholding with the noisy
//     (2.25, 1e-6)-DP threshold — all three share the same utility, since
//     they differ only in which parties could attack the crowd IDs;
//   - Partition: RAPPOR with reports partitioned by a small word-hash
//     (§2.2's mitigation), 4–256 partitions by sample size;
//   - RAPPOR: plain local differential privacy with ε=2.
//
// Counting methods operate on the word-count histogram, which is exactly
// what the shuffler's per-crowd thresholding and the analyzer's share
// recovery depend on; package-level tests cross-validate the fast path
// against the full cryptographic pipeline at small sizes.
package vocab

import (
	"math/rand/v2"
	"slices"

	"prochlo/internal/dp"
	"prochlo/internal/rappor"
	"prochlo/internal/workload"
)

// Method is a Figure 5 collection method.
type Method int

const (
	GroundTruth Method = iota
	NoCrowd
	Crowd
	SecretCrowd
	BlindedCrowd
	Partition
	RAPPOR
)

// String returns the Figure 5 label.
func (m Method) String() string {
	return [...]string{"GroundTruth", "NoCrowd", "Crowd", "Secret-Crowd",
		"Blinded-Crowd", "Partition", "RAPPOR"}[m]
}

// Config parameterizes the experiment; zero value fields select the paper's
// settings.
type Config struct {
	Corpus    workload.VocabConfig
	Threshold dp.ThresholdNoise // noisy crowd threshold (paper: 20, 10, 2)
	SecretT   int               // secret-share threshold (paper: 20)
	Rappor    rappor.Params
	// SignificanceZ is the detection threshold of the RAPPOR decoder in
	// null standard deviations.
	SignificanceZ float64
}

// DefaultConfig returns the §5 settings.
func DefaultConfig() Config {
	return Config{
		Corpus:        workload.DefaultVocab,
		Threshold:     dp.PaperThresholdNoise,
		SecretT:       20,
		Rappor:        rappor.DefaultParams(),
		SignificanceZ: 4,
	}
}

// PartitionsFor returns the partition count used by the Partition method:
// "between 4 and 256 partitions for the sample sizes in the experiment".
func PartitionsFor(sampleSize int) int {
	switch {
	case sampleSize <= 10_000:
		return 4
	case sampleSize <= 100_000:
		return 16
	case sampleSize <= 1_000_000:
		return 64
	default:
		return 256
	}
}

// Result is one cell of Figure 5.
type Result struct {
	Method     Method
	SampleSize int
	Unique     int // unique words recovered
}

// Run samples a corpus of the given size and measures how many unique words
// the method recovers.
func (c Config) Run(rng *rand.Rand, m Method, sampleSize int) Result {
	sample := c.Corpus.SampleWords(rng, sampleSize)
	counts := workload.CountWords(sample)
	res := Result{Method: m, SampleSize: sampleSize}
	switch m {
	case GroundTruth:
		res.Unique = len(counts)
	case NoCrowd:
		// Secret sharing alone: a word decrypts iff it has >= t shares.
		for _, n := range counts {
			if n >= c.SecretT {
				res.Unique++
			}
		}
	case Crowd, SecretCrowd, BlindedCrowd:
		// Noisy crowd thresholding; for Secret-/Blinded-Crowd the secret
		// share threshold t == T is implied by any surviving crowd.
		// Iterate words in sorted order so a seeded run is reproducible
		// (map iteration order would otherwise permute the noise stream).
		words := make([]uint64, 0, len(counts))
		for w := range counts {
			words = append(words, w)
		}
		slices.Sort(words)
		for _, w := range words {
			if _, ok := c.Threshold.Survives(rng, counts[w]); ok {
				res.Unique++
			}
		}
	case Partition:
		res.Unique = c.runPartitionedRappor(rng, sample)
	case RAPPOR:
		res.Unique = c.runRappor(rng, sample, nil)
	}
	return res
}

// runRappor collects the sample through RAPPOR and counts significantly
// detected words. candidateFilter optionally restricts the candidate set
// (used by partitioning).
func (c Config) runRappor(rng *rand.Rand, sample []uint64, candidateFilter func(uint64) bool) int {
	agg := rappor.NewAggregate(c.Rappor)
	for i, w := range sample {
		cohort := uint32(i % c.Rappor.Cohorts)
		agg.Add(cohort, c.Rappor.Encode(rng, cohort, []byte(workload.Word(w))))
	}
	var candidates [][]byte
	for w := uint64(0); w < uint64(c.Corpus.VocabSize); w++ {
		if candidateFilter == nil || candidateFilter(w) {
			candidates = append(candidates, []byte(workload.Word(w)))
		}
	}
	return len(rappor.Decode(agg, candidates, c.SignificanceZ))
}

// runPartitionedRappor splits reports into partitions by a word hash and
// runs RAPPOR independently in each (§2.2's partitioning mitigation): the
// per-partition noise floor is lower, improving recovery somewhat — at the
// cost of (2.25, 1e-6)-DP for the partition labels.
func (c Config) runPartitionedRappor(rng *rand.Rand, sample []uint64) int {
	parts := PartitionsFor(len(sample))
	bySlot := make([][]uint64, parts)
	for _, w := range sample {
		p := int(partitionOf(w, parts))
		bySlot[p] = append(bySlot[p], w)
	}
	total := 0
	for p, sub := range bySlot {
		if len(sub) == 0 {
			continue
		}
		p := uint64(p)
		total += c.runRappor(rng, sub, func(w uint64) bool {
			return partitionOf(w, parts) == p
		})
	}
	return total
}

// partitionOf assigns a word to one of n partitions by a cheap hash.
func partitionOf(w uint64, n int) uint64 {
	x := w * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return x % uint64(n)
}

// Figure5Sizes are the sample sizes of Figure 5's X axis.
var Figure5Sizes = []int{10_000, 100_000, 1_000_000, 10_000_000}

// PaperFigure5 carries the paper's reported unique-word counts for
// model-vs-paper comparison in EXPERIMENTS.md.
var PaperFigure5 = map[Method]map[int]int{
	GroundTruth: {10_000: 4062, 100_000: 18665, 1_000_000: 57500, 10_000_000: 91260},
	NoCrowd:     {10_000: 46, 100_000: 578, 1_000_000: 5921, 10_000_000: 28821},
	Crowd:       {10_000: 32, 100_000: 371, 1_000_000: 3730, 10_000_000: 21972},
	Partition:   {10_000: 17, 100_000: 222, 1_000_000: 828},
	RAPPOR:      {10_000: 2, 100_000: 15, 1_000_000: 122, 10_000_000: 240},
}
