package prochlo

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// TestPlainPipelineEndToEnd: reports in big crowds reach the analyzer's
// histogram; small crowds do not.
func TestPlainPipelineEndToEnd(t *testing.T) {
	p, err := New(WithSeed(1), WithNoisyThreshold(20, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := p.Submit("crowd:common", []byte("common")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := p.Submit("crowd:rare", []byte("rare")); err != nil {
			t.Fatal(err)
		}
	}
	if p.Pending() != 105 {
		t.Errorf("Pending = %d, want 105", p.Pending())
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram["rare"] != 0 {
		t.Error("rare crowd leaked through thresholding")
	}
	if c := res.Histogram["common"]; c < 70 || c > 100 {
		t.Errorf("common count = %d, want ~90 (noisy threshold drops ~10)", c)
	}
	if res.ShufflerStats.Crowds != 2 || res.ShufflerStats.CrowdsForwarded != 1 {
		t.Errorf("stats = %+v", res.ShufflerStats)
	}
	if p.Pending() != 0 {
		t.Error("Flush did not clear the batch")
	}
}

func TestPrivacyGuaranteeMatchesPaper(t *testing.T) {
	p, err := New(WithSeed(2), WithNoisyThreshold(20, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	eps, err := p.PrivacyGuarantee(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-2.25) > 0.05 {
		t.Errorf("eps at delta=1e-6 = %.3f, want ~2.25 (paper §5)", eps)
	}
	// Naive thresholding carries no DP guarantee.
	p2, _ := New(WithSeed(3), WithNaiveThreshold(20))
	if _, err := p2.PrivacyGuarantee(1e-6); err == nil {
		t.Error("naive thresholding claimed a DP guarantee")
	}
}

func TestSGXPipelineEndToEnd(t *testing.T) {
	p, err := New(WithSeed(4), WithMode(ModeSGX), WithNoisyThreshold(20, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Quote().ReportData) == 0 {
		t.Error("no attestation quote")
	}
	pad := func(s string) []byte {
		b := make([]byte, 32)
		copy(b, s)
		return b
	}
	for i := 0; i < 120; i++ {
		if err := p.Submit("app:popular", pad("popular")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.Submit("app:rare", pad("rare")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram[string(pad("rare"))] != 0 {
		t.Error("rare crowd leaked")
	}
	if c := res.Histogram[string(pad("popular"))]; c < 90 {
		t.Errorf("popular count = %d, want ~110", c)
	}
}

func TestBlindedPipelineEndToEnd(t *testing.T) {
	p, err := New(WithSeed(5), WithMode(ModeBlinded), WithNoisyThreshold(20, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		if err := p.Submit("zip:94043", []byte("bay-area")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := p.Submit("zip:99999", []byte("outlier")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram["outlier"] != 0 {
		t.Error("outlier crowd leaked through blinded thresholding")
	}
	if c := res.Histogram["bay-area"]; c < 60 {
		t.Errorf("bay-area count = %d, want ~80", c)
	}
}

// TestSecretSharePipeline: the Vocab Secret-Crowd configuration. Values
// with fewer than t reports must stay unrecoverable even when their crowd
// survives thresholding.
func TestSecretSharePipeline(t *testing.T) {
	p, err := New(WithSeed(6), WithSecretShare(20), WithNaiveThreshold(20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := p.Submit("w:frequent", []byte("frequent-word")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := p.Submit("w:rare", []byte("rare-word")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered["frequent-word"] != 60 {
		t.Errorf("frequent-word count = %d, want 60", res.Recovered["frequent-word"])
	}
	if _, leaked := res.Recovered["rare-word"]; leaked {
		t.Error("value with 8 < t=20 shares was recovered")
	}
}

func TestNoCrowdConfiguration(t *testing.T) {
	p, err := New(WithSeed(7), WithoutThreshold())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Submit("same-crowd", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histogram) != 5 {
		t.Errorf("histogram has %d entries, want all 5 (no thresholding)", len(res.Histogram))
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := New(WithSecretShare(0)); err == nil {
		t.Error("secret-share t=0 accepted")
	}
	if _, err := New(WithMode(Mode(99))); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestFlushSmallBatchFails(t *testing.T) {
	p, err := New(WithSeed(8), WithMinBatch(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Flush(); err == nil {
		t.Error("batch below MinBatch flushed")
	}
}

// TestWithWorkersAllModes exercises the pipeline-wide concurrency knob on
// every shuffler deployment: explicit worker pools must flush successfully
// and preserve the thresholding semantics of the serial path.
func TestWithWorkersAllModes(t *testing.T) {
	for _, mode := range []Mode{ModePlain, ModeSGX, ModeBlinded} {
		p, err := New(WithSeed(6), WithMode(mode), WithWorkers(4), WithNoisyThreshold(20, 10, 2))
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		pad := func(s string) []byte { // ModeSGX requires uniform report sizes
			b := make([]byte, 32)
			copy(b, s)
			return b
		}
		for i := 0; i < 80; i++ {
			if err := p.Submit("crowd:big", pad("common")); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if err := p.Submit("crowd:small", pad("rare")); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.Flush()
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.ShufflerStats.Crowds != 2 || res.ShufflerStats.CrowdsForwarded != 1 {
			t.Errorf("mode %d: stats = %+v", mode, res.ShufflerStats)
		}
		if res.Histogram[string(pad("rare"))] != 0 {
			t.Errorf("mode %d: rare crowd leaked", mode)
		}
	}
}

// TestSubmitBatchMatchesSubmit is the end-to-end batch contract: for every
// mode, a seeded pipeline fed via SubmitBatch produces exactly the result a
// twin pipeline fed the same reports one Submit at a time produces — at
// worker counts {1, 2, GOMAXPROCS}. (The ciphertext bytes differ, since the
// batch path draws randomness through per-report seeds, but thresholding,
// shuffling, and analysis are driven by the seeded pipeline RNG, so the
// analyzer-side result is identical.)
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	pad := func(s string) []byte {
		b := make([]byte, 32)
		copy(b, s)
		return b
	}
	var labels []string
	var data [][]byte
	for i := 0; i < 70; i++ {
		labels = append(labels, "crowd:common")
		data = append(data, pad("common"))
	}
	for i := 0; i < 26; i++ {
		labels = append(labels, fmt.Sprintf("crowd:mid-%d", i%2))
		data = append(data, pad(fmt.Sprintf("mid-%d", i%2)))
	}
	labels = append(labels, "crowd:lonely")
	data = append(data, pad("lonely"))

	for _, mode := range []Mode{ModePlain, ModeSGX, ModeBlinded} {
		build := func(workers int) *Pipeline {
			p, err := New(WithSeed(77), WithMode(mode), WithWorkers(workers),
				WithNoisyThreshold(20, 10, 2))
			if err != nil {
				t.Fatalf("mode %d: %v", mode, err)
			}
			return p
		}
		serial := build(1)
		for i := range labels {
			if err := serial.Submit(labels[i], data[i]); err != nil {
				t.Fatal(err)
			}
		}
		want, err := serial.Flush()
		if err != nil {
			t.Fatalf("mode %d serial: %v", mode, err)
		}
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			p := build(workers)
			if err := p.SubmitBatch(labels, data); err != nil {
				t.Fatalf("mode %d workers %d: %v", mode, workers, err)
			}
			if p.Pending() != len(labels) {
				t.Fatalf("mode %d: pending = %d, want %d", mode, p.Pending(), len(labels))
			}
			got, err := p.Flush()
			if err != nil {
				t.Fatalf("mode %d workers %d: %v", mode, workers, err)
			}
			if got.ShufflerStats != want.ShufflerStats {
				t.Errorf("mode %d workers %d: stats = %+v, want %+v",
					mode, workers, got.ShufflerStats, want.ShufflerStats)
			}
			if got.Undecryptable != want.Undecryptable {
				t.Errorf("mode %d workers %d: undecryptable = %d, want %d",
					mode, workers, got.Undecryptable, want.Undecryptable)
			}
			if len(got.Histogram) != len(want.Histogram) {
				t.Fatalf("mode %d workers %d: histogram = %v, want %v",
					mode, workers, got.Histogram, want.Histogram)
			}
			for k, v := range want.Histogram {
				if got.Histogram[k] != v {
					t.Fatalf("mode %d workers %d: histogram[%q] = %d, want %d",
						mode, workers, k, got.Histogram[k], v)
				}
			}
		}
	}
}

// TestSubmitBatchSecretShare covers the batch path's secret-share encoding:
// values reported by >= t clients are recovered, the rest stay sealed.
func TestSubmitBatchSecretShare(t *testing.T) {
	p, err := New(WithSeed(31), WithSecretShare(10), WithNaiveThreshold(2))
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	var data [][]byte
	add := func(v string, n int) {
		for i := 0; i < n; i++ {
			labels = append(labels, "w:"+v)
			data = append(data, []byte(v))
		}
	}
	add("popular", 25)
	add("niche", 4)
	if err := p.SubmitBatch(labels, data); err != nil {
		t.Fatal(err)
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered["popular"] != 25 {
		t.Errorf("recovered[popular] = %d, want 25", res.Recovered["popular"])
	}
	if _, ok := res.Recovered["niche"]; ok {
		t.Error("value below the share threshold was recovered")
	}
}

// TestSubmitBatchValidation pins the error cases.
func TestSubmitBatchValidation(t *testing.T) {
	p, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitBatch([]string{"a"}, nil); err == nil {
		t.Error("mismatched labels/data accepted")
	}
	if err := p.SubmitBatch(nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if p.Pending() != 0 {
		t.Errorf("pending = %d after empty batch", p.Pending())
	}
}

// TestCrossGroupHistogramEquivalence: the elliptic-group backend is an
// implementation detail of the envelope and blinding cryptography — under
// the same seed and workload, P-256 and ristretto255 pipelines must produce
// identical histograms in every mode that accepts WithGroup.
func TestCrossGroupHistogramEquivalence(t *testing.T) {
	run := func(t *testing.T, opts ...Option) map[string]int {
		t.Helper()
		p, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 70; i++ {
			if err := p.Submit(fmt.Sprintf("crowd:%d", i%3), []byte(fmt.Sprintf("value-%d", i%3))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			if err := p.Submit("crowd:rare", []byte("rare-value")); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return res.Histogram
	}
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"plain", []Option{WithSeed(11), WithNoisyThreshold(20, 10, 2)}},
		{"blinded", []Option{WithSeed(11), WithMode(ModeBlinded), WithNoisyThreshold(20, 10, 2)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			p256 := run(t, append([]Option{WithGroup("p256")}, mode.opts...)...)
			ristretto := run(t, append([]Option{WithGroup("ristretto255")}, mode.opts...)...)
			if len(p256) != len(ristretto) {
				t.Fatalf("histogram sizes differ: p256 %v, ristretto255 %v", p256, ristretto)
			}
			for k, v := range p256 {
				if ristretto[k] != v {
					t.Errorf("histogram[%q] = %d on p256, %d on ristretto255", k, v, ristretto[k])
				}
			}
			if p256["rare-value"] != 0 {
				t.Error("rare crowd leaked through thresholding")
			}
		})
	}
}
